(* Direct coverage for the soundness analyser (Verify) and the k-ary
   clustering engine (Cluster): known-good inputs pass, and each
   violation class fails with the precise witness the checker's oracle
   relies on. *)

module R = Relational
module V = R.Value
module E = Entity_id
open Helpers

let case name f = Alcotest.test_case name `Quick f

(* ---- fixtures ---- *)

let key_schema = R.Schema.of_names [ "k" ]
let ktup x = R.Tuple.make key_schema [ v x ]

let entry r s = { E.Matching_table.r_key = ktup r; s_key = ktup s }

let mt entries =
  E.Matching_table.make ~r_key_attrs:[ "k" ] ~s_key_attrs:[ "k" ] entries

let key_value t = V.to_string (R.Tuple.nth t 0)

(* ---- Verify ---- *)

let verify_tests =
  [
    case "known-good tables verify clean" (fun () ->
        let table = mt [ entry "a" "1"; entry "b" "2" ] in
        let negative = mt [ entry "c" "3" ] in
        let report = E.Verify.check ~negative table in
        Alcotest.(check int) "no uniqueness violations" 0
          (List.length report.uniqueness);
        Alcotest.(check bool) "consistent with NMT" true
          report.consistent_with_negative;
        Alcotest.(check bool) "sound" true
          (E.Verify.is_sound_wrt_constraints report));
    case "R tuple matched twice yields the witness" (fun () ->
        let table = mt [ entry "a" "1"; entry "a" "2"; entry "b" "3" ] in
        let report = E.Verify.check table in
        Alcotest.(check bool) "unsound" false
          (E.Verify.is_sound_wrt_constraints report);
        match report.uniqueness with
        | [ E.Matching_table.R_tuple_matched_twice { r_key; s_keys } ] ->
            Alcotest.(check string) "offending r key" "a" (key_value r_key);
            Alcotest.(check (list string))
              "both partners witnessed" [ "1"; "2" ]
              (List.sort compare (List.map key_value s_keys))
        | _ -> Alcotest.fail "one R_tuple_matched_twice witness expected");
    case "S tuple matched twice yields the witness" (fun () ->
        let table = mt [ entry "a" "1"; entry "b" "1" ] in
        let report = E.Verify.check table in
        match report.uniqueness with
        | [ E.Matching_table.S_tuple_matched_twice { s_key; r_keys } ] ->
            Alcotest.(check string) "offending s key" "1" (key_value s_key);
            Alcotest.(check (list string))
              "both partners witnessed" [ "a"; "b" ]
              (List.sort compare (List.map key_value r_keys))
        | _ -> Alcotest.fail "one S_tuple_matched_twice witness expected");
    case "pair in both MT and NMT fails consistency" (fun () ->
        let table = mt [ entry "a" "1" ] in
        let negative = mt [ entry "a" "1"; entry "b" "2" ] in
        let report = E.Verify.check ~negative table in
        Alcotest.(check bool) "inconsistent" false
          report.consistent_with_negative;
        Alcotest.(check bool) "unsound" false
          (E.Verify.is_sound_wrt_constraints report);
        let rendered = Format.asprintf "%a" E.Verify.pp_report report in
        let contains needle hay =
          let nl = String.length needle and hl = String.length hay in
          let rec scan i =
            i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1))
          in
          scan 0
        in
        Alcotest.(check bool) "report says unsound" true
          (contains "unsound" rendered));
    case "a matched-pair chain witnesses both uniqueness classes" (fun () ->
        (* a~1, b~1, b~2 — transitivity would force a~2, which the table
           omits; the analyser must surface the chain as one violation on
           each side rather than silently accepting a non-transitive
           verdict table. *)
        let table = mt [ entry "a" "1"; entry "b" "1"; entry "b" "2" ] in
        let report = E.Verify.check table in
        Alcotest.(check bool) "unsound" false
          (E.Verify.is_sound_wrt_constraints report);
        let has_r =
          List.exists
            (function
              | E.Matching_table.R_tuple_matched_twice { r_key; _ } ->
                  key_value r_key = "b"
              | _ -> false)
            report.uniqueness
        and has_s =
          List.exists
            (function
              | E.Matching_table.S_tuple_matched_twice { s_key; _ } ->
                  key_value s_key = "1"
              | _ -> false)
            report.uniqueness
        in
        Alcotest.(check bool) "R-side witness on b" true has_r;
        Alcotest.(check bool) "S-side witness on 1" true has_s);
    case "against_truth counts every quadrant" (fun () ->
        let table = mt [ entry "a" "1"; entry "b" "2" ] in
        let negative = mt [ entry "d" "4"; entry "c" "3" ] in
        let truth = [ entry "a" "1"; entry "c" "3" ] in
        let c = E.Verify.against_truth ~truth ~negative table in
        Alcotest.(check int) "true matches" 1 c.true_matches;
        Alcotest.(check int) "false matches" 1 c.false_matches;
        Alcotest.(check int) "missed" 1 c.missed_matches;
        Alcotest.(check int) "true non-matches" 1 c.true_non_matches;
        Alcotest.(check int) "false non-matches" 1 c.false_non_matches;
        Alcotest.(check bool) "unsound wrt truth" false
          (E.Verify.sound_wrt_truth c));
    case "perfect table is sound wrt its own truth" (fun () ->
        let table = mt [ entry "a" "1"; entry "b" "2" ] in
        let c =
          E.Verify.against_truth ~truth:(E.Matching_table.entries table)
            table
        in
        Alcotest.(check int) "" 0 c.false_matches;
        Alcotest.(check int) "" 0 c.missed_matches;
        Alcotest.(check bool) "" true (E.Verify.sound_wrt_truth c));
    case "add_domain_attribute tags every tuple" (fun () ->
        let r =
          relation [ "name"; "cuisine" ] [ [ "name" ] ]
            [ [ "A"; "Chinese" ]; [ "B"; "Greek" ] ]
        in
        let tagged = E.Verify.add_domain_attribute "db" (v "r1") r in
        Alcotest.(check bool) "schema extended" true
          (R.Schema.mem (R.Relation.schema tagged) "db");
        Alcotest.(check int) "same cardinality" 2
          (R.Relation.cardinality tagged);
        Alcotest.(check bool) "every tuple tagged" true
          (List.for_all
             (fun t ->
               V.eq3 (R.Tuple.get (R.Relation.schema tagged) t "db") (v "r1")
               = V.True)
             (R.Relation.tuples tagged)));
    qtest ~count:100 "uniqueness verdict matches a reference count"
      entries_gen
      (fun entries ->
        (* satisfies_uniqueness iff no key on either side pairs with two
           distinct partners — recomputed here by brute grouping over the
           collapsed entry list. *)
        let table = mt entries in
        let distinct = E.Matching_table.entries table in
        let partners proj other =
          List.sort_uniq compare (List.map proj distinct)
          |> List.for_all (fun k ->
                 List.filter (fun e -> proj e = k) distinct
                 |> List.map other
                 |> List.sort_uniq compare
                 |> List.length <= 1)
        in
        let expected =
          partners
            (fun (e : E.Matching_table.entry) -> key_value e.r_key)
            (fun e -> key_value e.s_key)
          && partners
               (fun (e : E.Matching_table.entry) -> key_value e.s_key)
               (fun e -> key_value e.r_key)
        in
        let report = E.Verify.check table in
        E.Matching_table.satisfies_uniqueness table = expected
        && (report.uniqueness = []) = expected);
    qtest ~count:100 "NMT consistency is exactly entry disjointness"
      QCheck2.Gen.(pair entries_gen entries_gen)
      (fun (pos, neg) ->
        let table = mt pos and negative = mt neg in
        let shared =
          List.exists (E.Matching_table.mem table)
            (E.Matching_table.entries negative)
        in
        let report = E.Verify.check ~negative table in
        report.consistent_with_negative = not shared);
    qtest ~count:100 "a table is never unsound against its own truth"
      entries_gen
      (fun entries ->
        let table = mt entries in
        let c =
          E.Verify.against_truth ~truth:(E.Matching_table.entries table)
            table
        in
        c.false_matches = 0 && c.missed_matches = 0
        && E.Verify.sound_wrt_truth c);
  ]

(* ---- Cluster ---- *)

let cluster_tests =
  [
    case "duplicate in-database assignment is witnessed" (fun () ->
        (* Two tuples of db "a" share the clustering vector: the
           violation must name the cluster, with both a-members in it,
           and the cluster must also appear in [clusters] (the checker
           derives pairs from [clusters] alone, counting on violations
           being a subset rather than extra clusters). *)
        let a =
          relation [ "k"; "x" ] []
            [ [ "e1"; "same" ]; [ "e2"; "same" ] ]
        in
        let b = relation [ "j"; "x" ] [] [ [ "f1"; "same" ] ] in
        let key = E.Extended_key.make [ "x" ] in
        let result = E.Cluster.integrate ~key [] [ ("a", a); ("b", b) ] in
        match result.violations with
        | [ bad ] ->
            let a_members =
              List.filter
                (fun (m : E.Cluster.member) -> String.equal m.db "a")
                bad.members
            in
            Alcotest.(check int) "two a-members witnessed" 2
              (List.length a_members);
            Alcotest.(check bool) "violation is a reported cluster" true
              (List.memq bad result.clusters)
        | _ -> Alcotest.fail "one violation expected");
    case "NULL clustering key stays undetermined" (fun () ->
        let schema = R.Schema.of_names [ "k"; "x" ] in
        let a =
          R.Relation.create schema
            [ [ v "e1"; v "1" ]; [ V.Null; v "2" ] ]
        in
        let b = R.Relation.create schema [ [ v "e1"; v "3" ] ] in
        let key = E.Extended_key.make [ "k" ] in
        let result = E.Cluster.integrate ~key [] [ ("a", a); ("b", b) ] in
        Alcotest.(check int) "one cluster" 1 (List.length result.clusters);
        (match result.undetermined with
        | [ m ] ->
            Alcotest.(check string) "from db a" "a" m.db;
            Alcotest.(check bool) "the NULL-keyed tuple" true
              (V.is_null
                 (R.Tuple.get (R.Relation.schema a) m.tuple "k"))
        | _ -> Alcotest.fail "one undetermined member expected"));
    case "three databases close a 3-cycle into one cluster" (fun () ->
        (* One entity present in k=3 databases: pairwise matching yields
           the 3-cycle a~b, b~c, a~c, and the k-ary clustering must
           report exactly one 3-member cluster — every unordered pair
           co-clustered, no member dropped from the cycle. *)
        let mk name k = (name, relation [ "k" ] [] [ [ k ] ]) in
        let key = E.Extended_key.make [ "k" ] in
        let result =
          E.Cluster.integrate ~key []
            [ mk "a" "e1"; mk "b" "e1"; mk "c" "e1" ]
        in
        (match result.clusters with
        | [ c ] ->
            Alcotest.(check (list string))
              "all three databases in the cycle" [ "a"; "b"; "c" ]
              (List.sort compare
                 (List.map (fun (m : E.Cluster.member) -> m.db) c.members))
        | _ -> Alcotest.fail "one cluster expected");
        Alcotest.(check int) "no violations" 0
          (List.length result.violations));
    case "NULL key in only one of k databases stays local" (fun () ->
        (* The NULL-keyed tuple lives in db c alone; a and b still agree
           pairwise and must cluster, while c's tuple is undetermined —
           NULL never joins a cluster through the other databases. *)
        let schema = R.Schema.of_names [ "k" ] in
        let a = R.Relation.create schema [ [ v "e1" ] ] in
        let b = R.Relation.create schema [ [ v "e1" ] ] in
        let c = R.Relation.create schema [ [ V.Null ] ] in
        let key = E.Extended_key.make [ "k" ] in
        let result =
          E.Cluster.integrate ~key [] [ ("a", a); ("b", b); ("c", c) ]
        in
        (match result.clusters with
        | [ cl ] ->
            Alcotest.(check (list string))
              "a and b cluster without c" [ "a"; "b" ]
              (List.sort compare
                 (List.map (fun (m : E.Cluster.member) -> m.db) cl.members))
        | _ -> Alcotest.fail "one cluster expected");
        match result.undetermined with
        | [ m ] -> Alcotest.(check string) "c's tuple undetermined" "c" m.db
        | _ -> Alcotest.fail "one undetermined member expected");
    case "duplicate database names raise Invalid_argument" (fun () ->
        let a = relation [ "k" ] [] [ [ "e1" ] ] in
        let key = E.Extended_key.make [ "k" ] in
        match E.Cluster.integrate ~key [] [ ("x", a); ("x", a) ] with
        | _ -> Alcotest.fail "Invalid_argument expected"
        | exception Invalid_argument _ -> ());
    qtest ~count:10 "clustering agrees with pairwise identify"
      (restaurant_gen ~n_entities:10 ())
      (fun inst ->
        let dbs = [ ("r", inst.r); ("s", inst.s) ] in
        let result = E.Cluster.integrate ~key:inst.key inst.ilfds dbs in
        E.Cluster.pairwise_consistent ~key:inst.key inst.ilfds dbs result);
    qtest ~count:10 "violations are always a subset of clusters"
      (restaurant_gen ~n_entities:10 ~homonym_rate:0.5 ())
      (fun inst ->
        (* A deliberately weak key (first K_Ext attribute only) over a
           homonym-rich instance produces in-database collisions; every
           violation must be one of the reported clusters, never an
           extra. *)
        let weak =
          E.Extended_key.make
            [ List.hd (E.Extended_key.attributes inst.key) ]
        in
        let result =
          E.Cluster.integrate ~key:weak inst.ilfds
            [ ("r", inst.r); ("s", inst.s) ]
        in
        List.for_all
          (fun bad -> List.memq bad result.clusters)
          result.violations);
  ]

let () =
  Alcotest.run "cluster-verify"
    [ ("verify", verify_tests); ("cluster", cluster_tests) ]
