(* Tests for the durable store: WAL framing and torn-tail recovery,
   snapshot bounding and staleness, the lock protocol, the merge/split
   overlay with rollback, and recovery idempotence. Every store runs
   with [sync:false] — crashes are simulated by truncating or
   corrupting files, so fsync latency buys nothing here. *)

module R = Relational
module E = Entity_id
module S = Eid_store.Store
module W = Eid_store.Wal
module F = Eid_store.Fsutil
open Helpers

let case name f = Alcotest.test_case name `Quick f

let cfg =
  {
    S.r_attrs = [ "name"; "cuisine"; "street" ];
    r_key = [ "name"; "cuisine" ];
    s_attrs = [ "name"; "speciality"; "county" ];
    s_key = [ "name"; "speciality" ];
    key = [ "name"; "cuisine"; "speciality" ];
    rules =
      [
        "speciality = Hunan -> cuisine = Chinese";
        "name = TwinCities & street = Co.B2 -> speciality = Hunan";
      ];
    check_conflicts = false;
  }

(* These two rows match through the first rule: the S side derives
   cuisine = Chinese from speciality = Hunan, completing the extended
   key on both sides. *)
let r_match = [| v "TwinCities"; v "Chinese"; v "Co.B2" |]
let s_match = [| v "TwinCities"; v "Hunan"; v "Dakota" |]

(* And these two do not: no rule bridges their keys. *)
let r_lone = [| v "Lone"; v "Thai"; v "Elm" |]
let s_solo = [| v "Solo"; v "Gyros"; v "Kent" |]

let in_dir f =
  let dir = F.fresh_dir "test_store" in
  Fun.protect ~finally:(fun () -> F.remove_tree dir) (fun () -> f dir)

let open_ok ?telemetry ?config dir =
  match S.open_store ?telemetry ~sync:false ?config ~dir () with
  | Ok t -> t
  | Error e -> Alcotest.failf "open_store: %s" e

let ok = function
  | Ok x -> x
  | Error c ->
      Alcotest.failf "unexpected conflict: %s"
        (Format.asprintf "%a" S.pp_conflict c)

let cardinality t = E.Matching_table.cardinality (S.matching_table t)
let wal_file dir = Filename.concat dir "wal.log"
let chop path bytes =
  let size = (Unix.stat path).Unix.st_size in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  Unix.ftruncate fd (size - bytes);
  Unix.close fd

(* ---- WAL framing ---- *)

let wal_tests =
  [
    case "records round-trip with monotone offsets" (fun () ->
        in_dir (fun dir ->
            let path = wal_file dir in
            let w, off0 = W.open_append path in
            Alcotest.(check int) "fresh log is empty" 0 off0;
            let o1 = W.append w "alpha" in
            let o2 = W.append w "beta" in
            Alcotest.(check bool) "monotone" true (o2 > o1 && o1 > 0);
            W.sync w;
            W.close w;
            let rp = W.read path in
            Alcotest.(check (list string)) "payloads" [ "alpha"; "beta" ]
              rp.W.payloads;
            Alcotest.(check int) "valid to the end" o2 rp.W.valid_offset;
            Alcotest.(check bool) "not torn" false rp.W.torn;
            (* replay from an interior offset skips the prefix *)
            let tail = W.read ~from:o1 path in
            Alcotest.(check (list string)) "tail only" [ "beta" ]
              tail.W.payloads));
    case "a torn tail stops replay and truncates cleanly" (fun () ->
        in_dir (fun dir ->
            let path = wal_file dir in
            let w, _ = W.open_append path in
            let o1 = W.append w "alpha" in
            ignore (W.append w "beta" : int);
            W.sync w;
            W.close w;
            chop path 3 (* mid-payload of the second record *);
            let rp = W.read path in
            Alcotest.(check (list string)) "prefix survives" [ "alpha" ]
              rp.W.payloads;
            Alcotest.(check int) "valid offset at the tear" o1
              rp.W.valid_offset;
            Alcotest.(check bool) "torn" true rp.W.torn;
            W.truncate path o1;
            let rp = W.read path in
            Alcotest.(check bool) "clean after truncate" false rp.W.torn;
            Alcotest.(check (list string)) "same prefix" [ "alpha" ]
              rp.W.payloads));
    case "a corrupted payload byte fails its checksum" (fun () ->
        in_dir (fun dir ->
            let path = wal_file dir in
            let w, _ = W.open_append path in
            ignore (W.append w "alpha" : int);
            W.sync w;
            W.close w;
            let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
            ignore (Unix.lseek fd 9 Unix.SEEK_SET : int);
            ignore (Unix.write_substring fd "X" 0 1 : int);
            Unix.close fd;
            let rp = W.read path in
            Alcotest.(check (list string)) "nothing valid" [] rp.W.payloads;
            Alcotest.(check int) "torn from the start" 0 rp.W.valid_offset;
            Alcotest.(check bool) "torn" true rp.W.torn));
    case "a missing log reads as an empty replay" (fun () ->
        in_dir (fun dir ->
            let rp = W.read (wal_file dir) in
            Alcotest.(check (list string)) "no payloads" [] rp.W.payloads;
            Alcotest.(check bool) "not torn" false rp.W.torn));
  ]

(* ---- filesystem plumbing ---- *)

let fsutil_tests =
  [
    case "with_atomic_out leaves nothing behind on failure" (fun () ->
        in_dir (fun dir ->
            let path = Filename.concat dir "out" in
            (match
               F.with_atomic_out path (fun oc ->
                   output_string oc "partial";
                   failwith "boom")
             with
            | _ -> Alcotest.fail "expected the failure to propagate"
            | exception Failure _ -> ());
            Alcotest.(check bool) "no target" true
              (not (Sys.file_exists path));
            Alcotest.(check bool) "no temp file" true
              (not (Sys.file_exists (path ^ ".tmp")))));
    case "a stale lock from a dead process is broken" (fun () ->
        in_dir (fun dir ->
            (* A reaped child's PID is guaranteed dead and (in any
               realistic test run) not yet recycled. *)
            let pid =
              Unix.create_process "true" [| "true" |] Unix.stdin Unix.stdout
                Unix.stderr
            in
            ignore (Unix.waitpid [] pid);
            let lock = Filename.concat dir "lock" in
            let oc = open_out lock in
            output_string oc (string_of_int pid);
            close_out oc;
            (match F.acquire_lock lock with
            | Ok () -> ()
            | Error e -> Alcotest.failf "stale lock not broken: %s" e);
            F.release_lock lock));
    case "a live lock refuses a second open" (fun () ->
        in_dir (fun dir ->
            let t = open_ok ~config:cfg dir in
            (match S.open_store ~sync:false ~dir () with
            | Error _ -> ()
            | Ok t2 ->
                S.close t2;
                Alcotest.fail "second open should have been refused");
            S.close t;
            (* releasing the lock makes the store reopenable *)
            let t = open_ok dir in
            S.close t));
  ]

(* ---- crash recovery ---- *)

let recovery_tests =
  [
    case "an empty store recovers to an empty store" (fun () ->
        in_dir (fun dir ->
            let t = open_ok ~config:cfg dir in
            S.close t;
            let t = open_ok dir in
            Alcotest.(check int) "nothing replayed" 0 (S.recovered_records t);
            Alcotest.(check int) "empty table" 0 (cardinality t);
            S.close t));
    case "recovery replays the WAL and is idempotent" (fun () ->
        in_dir (fun dir ->
            let t = open_ok ~config:cfg dir in
            ignore (ok (S.insert t S.R r_match));
            let entries = ok (S.insert t S.S s_match) in
            Alcotest.(check int) "insert matched" 1 (List.length entries);
            let mt0 = S.matching_table t in
            S.close t;
            let recover () =
              let t = open_ok dir in
              let r =
                (S.recovered_records t, S.wal_offset t, S.matching_table t)
              in
              S.close t;
              r
            in
            let n1, off1, mt1 = recover () in
            let n2, off2, mt2 = recover () in
            Alcotest.(check int) "two ops replayed" 2 n1;
            Alcotest.(check int) "second recovery identical" n1 n2;
            Alcotest.(check int) "offsets stable" off1 off2;
            Alcotest.(check bool) "table restored" true
              (mt_entries_equal mt0 mt1);
            Alcotest.(check bool) "table stable" true
              (mt_entries_equal mt1 mt2)));
    case "a torn final record is truncated, the prefix survives" (fun () ->
        in_dir (fun dir ->
            let t = open_ok ~config:cfg dir in
            ignore (ok (S.insert t S.R r_match));
            ignore (ok (S.insert t S.S s_match));
            S.close t;
            chop (wal_file dir) 3;
            let telemetry = Telemetry.create () in
            let t = open_ok ~telemetry dir in
            Alcotest.(check int) "tear counted" 1
              (Telemetry.counter telemetry "store.recovery.torn_tail");
            Alcotest.(check int) "only the first op survives" 1
              (S.recovered_records t);
            Alcotest.(check int) "no match yet" 0 (cardinality t);
            (* the store stays writable past the repaired tail *)
            let entries = ok (S.insert t S.S s_match) in
            Alcotest.(check int) "re-insert matches" 1 (List.length entries);
            S.close t;
            let t = open_ok dir in
            Alcotest.(check int) "repair is durable" 1 (cardinality t);
            S.close t));
    case "a snapshot bounds the replay" (fun () ->
        in_dir (fun dir ->
            let t = open_ok ~config:cfg dir in
            ignore (ok (S.insert t S.R r_match));
            ignore (ok (S.insert t S.S s_match));
            S.snapshot t;
            ignore (ok (S.insert t S.R r_lone));
            S.close t;
            let t = open_ok dir in
            Alcotest.(check int) "only the tail replays" 1
              (S.recovered_records t);
            Alcotest.(check int) "full state restored" 1 (cardinality t);
            S.close t));
    case "a stale rules hash forces a full replay" (fun () ->
        in_dir (fun dir ->
            let t = open_ok ~config:cfg dir in
            ignore (ok (S.insert t S.R r_match));
            ignore (ok (S.insert t S.S s_match));
            S.snapshot t;
            S.close t;
            (* Changing the configuration invalidates the snapshot's
               rules hash; the never-compacted WAL makes the fallback
               complete. A harmless extra rule keeps the data's
               behaviour identical so the tables must still agree. *)
            let cfg' =
              { cfg with S.rules = cfg.S.rules @ [ "street = X -> county = Y" ] }
            in
            Sys.remove (Filename.concat dir "config.json");
            let telemetry = Telemetry.create () in
            let t = open_ok ~telemetry ~config:cfg' dir in
            Alcotest.(check int) "stale snapshot counted" 1
              (Telemetry.counter telemetry "store.recovery.snapshot_stale");
            Alcotest.(check int) "full WAL replayed" 2 (S.recovered_records t);
            Alcotest.(check int) "state rebuilt" 1 (cardinality t);
            S.close t));
    case "a corrupt snapshot forces a full replay" (fun () ->
        in_dir (fun dir ->
            let t = open_ok ~config:cfg dir in
            ignore (ok (S.insert t S.R r_match));
            ignore (ok (S.insert t S.S s_match));
            S.snapshot t;
            S.close t;
            let snap = Filename.concat dir "snapshot" in
            let fd = Unix.openfile snap [ Unix.O_WRONLY ] 0 in
            ignore (Unix.lseek fd 20 Unix.SEEK_SET : int);
            ignore (Unix.write_substring fd "\xff" 0 1 : int);
            Unix.close fd;
            let telemetry = Telemetry.create () in
            let t = open_ok ~telemetry dir in
            Alcotest.(check int) "corruption counted" 1
              (Telemetry.counter telemetry "store.recovery.snapshot_corrupt");
            Alcotest.(check int) "full WAL replayed" 2 (S.recovered_records t);
            Alcotest.(check int) "state rebuilt" 1 (cardinality t);
            S.close t));
    case "a changed provided configuration is refused" (fun () ->
        in_dir (fun dir ->
            let t = open_ok ~config:cfg dir in
            S.close t;
            let cfg' = { cfg with S.check_conflicts = true } in
            match S.open_store ~sync:false ~config:cfg' ~dir () with
            | Error _ -> ()
            | Ok t ->
                S.close t;
                Alcotest.fail "config mismatch should refuse to open"));
  ]

(* ---- conflicts and the merge overlay ---- *)

let overlay_tests =
  [
    case "a key violation is recorded and survives recovery" (fun () ->
        in_dir (fun dir ->
            let t = open_ok ~config:cfg dir in
            ignore (ok (S.insert t S.R r_match));
            (match
               S.insert t S.R [| v "TwinCities"; v "Chinese"; v "Elsewhere" |]
             with
            | Error (S.Key_violation _) -> ()
            | Error c ->
                Alcotest.failf "wrong conflict: %s"
                  (Format.asprintf "%a" S.pp_conflict c)
            | Ok _ -> Alcotest.fail "duplicate key accepted");
            Alcotest.(check int) "recorded" 1 (List.length (S.conflicts t));
            S.close t;
            let t = open_ok dir in
            Alcotest.(check int) "replayed" 1 (List.length (S.conflicts t));
            S.close t));
    case "merge, rollback, re-merge round-trip" (fun () ->
        in_dir (fun dir ->
            let t = open_ok ~config:cfg dir in
            ignore (ok (S.insert t S.R r_lone));
            ignore (ok (S.insert t S.S s_solo));
            let r_key = [| v "Lone"; v "Thai" |]
            and s_key = [| v "Solo"; v "Gyros" |] in
            let record = ok (S.merge t ~r_key ~s_key) in
            Alcotest.(check bool) "manual inverse" true
              record.S.inverse_manual;
            Alcotest.(check int) "pair asserted" 1 (cardinality t);
            (match S.merge t ~r_key ~s_key with
            | Error (S.Duplicate_merge _) -> ()
            | _ -> Alcotest.fail "re-merging the same pair must conflict");
            (match S.rollback t with
            | Some _ -> ()
            | None -> Alcotest.fail "rollback found nothing");
            Alcotest.(check int) "pair retracted" 0 (cardinality t);
            Alcotest.(check bool) "rollback is exhausted" true
              (S.rollback t = None);
            ignore (ok (S.merge t ~r_key ~s_key));
            Alcotest.(check int) "re-merge sticks" 1 (cardinality t);
            S.close t;
            let t = open_ok dir in
            Alcotest.(check int) "overlay survives recovery" 1 (cardinality t);
            Alcotest.(check int) "full log restored" 2
              (List.length (S.merge_log t));
            S.close t));
    case "split suppresses a derived pair; rollback restores it" (fun () ->
        in_dir (fun dir ->
            let t = open_ok ~config:cfg dir in
            ignore (ok (S.insert t S.R r_match));
            ignore (ok (S.insert t S.S s_match));
            Alcotest.(check int) "derived match" 1 (cardinality t);
            let r_key = [| v "TwinCities"; v "Chinese" |]
            and s_key = [| v "TwinCities"; v "Hunan" |] in
            let record = ok (S.split t ~r_key ~s_key) in
            Alcotest.(check bool) "suppression inverse" false
              record.S.inverse_manual;
            Alcotest.(check int) "suppressed" 0 (cardinality t);
            (match S.split t ~r_key ~s_key with
            | Error (S.Unknown_pair _) -> ()
            | _ -> Alcotest.fail "splitting a split pair must conflict");
            (match S.rollback t with
            | Some _ -> ()
            | None -> Alcotest.fail "rollback found nothing");
            Alcotest.(check int) "restored" 1 (cardinality t);
            S.close t));
    case "merge validates its keys" (fun () ->
        in_dir (fun dir ->
            let t = open_ok ~config:cfg dir in
            ignore (ok (S.insert t S.R r_lone));
            ignore (ok (S.insert t S.S s_solo));
            (match
               S.merge t
                 ~r_key:[| v "Ghost"; v "Thai" |]
                 ~s_key:[| v "Solo"; v "Gyros" |]
             with
            | Error (S.Unknown_key { side = S.R; _ }) -> ()
            | _ -> Alcotest.fail "unknown R key accepted");
            ignore
              (ok
                 (S.merge t
                    ~r_key:[| v "Lone"; v "Thai" |]
                    ~s_key:[| v "Solo"; v "Gyros" |]));
            ignore (ok (S.insert t S.S [| v "Other"; v "Hunan"; v "Kent" |]));
            (match
               S.merge t
                 ~r_key:[| v "Lone"; v "Thai" |]
                 ~s_key:[| v "Other"; v "Hunan" |]
             with
            | Error (S.Merge_uniqueness _) -> ()
            | _ -> Alcotest.fail "double-matching merge accepted");
            S.close t));
  ]

let () =
  Alcotest.run "store"
    [
      ("wal", wal_tests);
      ("fsutil", fsutil_tests);
      ("recovery", recovery_tests);
      ("overlay", overlay_tests);
    ]
