(* Tests for the extension layer: aggregation, hash indexes, the
   incremental (federated-update) engine, and ILFD mining. *)

module R = Relational
module V = R.Value
module E = Entity_id
module PD = Workload.Paper_data
open Helpers

let case name f = Alcotest.test_case name `Quick f

(* ---- Aggregate ---- *)

let sales =
  R.Relation.create
    (R.Schema.of_names [ "region"; "rep"; "amount" ])
    [
      [ v "west"; v "ann"; vi 10 ];
      [ v "west"; v "bob"; vi 30 ];
      [ v "east"; v "cal"; vi 20 ];
      [ v "east"; v "cal"; vi 25 ];
      [ v "east"; v "dee"; V.Null ];
    ]

let aggregate_tests =
  [
    case "group_by count and sum" (fun () ->
        let out =
          R.Aggregate.group_by ~by:[ "region" ]
            [ ("n", R.Aggregate.Count); ("total", R.Aggregate.Sum "amount") ]
            sales
        in
        Alcotest.(check int) "groups" 2 (R.Relation.cardinality out);
        let schema = R.Relation.schema out in
        let east =
          Option.get
            (R.Relation.find_opt
               (fun t -> V.to_string (R.Tuple.get schema t "region") = "east")
               out)
        in
        Alcotest.(check string) "count east" "3"
          (V.to_string (R.Tuple.get schema east "n"));
        Alcotest.(check string) "sum east skips null" "45"
          (V.to_string (R.Tuple.get schema east "total")));
    case "count_distinct and min/max" (fun () ->
        let out =
          R.Aggregate.group_by ~by:[ "region" ]
            [
              ("reps", R.Aggregate.Count_distinct "rep");
              ("lo", R.Aggregate.Min "amount");
              ("hi", R.Aggregate.Max "amount");
            ]
            sales
        in
        let schema = R.Relation.schema out in
        let east =
          Option.get
            (R.Relation.find_opt
               (fun t -> V.to_string (R.Tuple.get schema t "region") = "east")
               out)
        in
        Alcotest.(check string) "distinct reps" "2"
          (V.to_string (R.Tuple.get schema east "reps"));
        Alcotest.(check string) "min" "20"
          (V.to_string (R.Tuple.get schema east "lo"));
        Alcotest.(check string) "max" "25"
          (V.to_string (R.Tuple.get schema east "hi")));
    case "empty by-list aggregates whole relation" (fun () ->
        let out =
          R.Aggregate.group_by ~by:[] [ ("n", R.Aggregate.Count) ] sales
        in
        Alcotest.(check int) "" 1 (R.Relation.cardinality out));
    check_raises_any "sum over strings rejected" (fun () ->
        R.Aggregate.group_by ~by:[] [ ("s", R.Aggregate.Sum "rep") ] sales);
    case "distinct_values sorted, null-free" (fun () ->
        Alcotest.(check (list string)) "" [ "10"; "20"; "25"; "30" ]
          (List.map V.to_string (R.Aggregate.distinct_values sales "amount")));
  ]

(* ---- Index ---- *)

let index_tests =
  [
    case "lookup finds all matches in order" (fun () ->
        let idx = R.Index.build sales [ "region" ] in
        Alcotest.(check int) "" 3 (List.length (R.Index.lookup idx [ v "east" ]));
        Alcotest.(check int) "" 0 (List.length (R.Index.lookup idx [ v "north" ])));
    case "null keys are not indexed nor found" (fun () ->
        let idx = R.Index.build sales [ "amount" ] in
        Alcotest.(check int) "4 of 5 indexed" 4 (R.Index.cardinality idx);
        Alcotest.(check int) "" 0 (List.length (R.Index.lookup idx [ V.Null ])));
    case "index agrees with selection" (fun () ->
        let idx = R.Index.build sales [ "rep" ] in
        let by_index = R.Index.lookup idx [ v "cal" ] in
        let by_scan =
          R.Relation.tuples
            (R.Algebra.select (R.Predicate.eq "rep" (v "cal")) sales)
        in
        Alcotest.(check int) "" (List.length by_scan) (List.length by_index));
    case "add extends the index" (fun () ->
        let idx = R.Index.build sales [ "region" ] in
        let t =
          R.Tuple.make (R.Relation.schema sales) [ v "north"; v "eve"; vi 5 ]
        in
        let idx = R.Index.add idx (R.Relation.schema sales) t in
        Alcotest.(check int) "" 1
          (List.length (R.Index.lookup idx [ v "north" ])));
    case "multi-attribute key" (fun () ->
        let idx = R.Index.build sales [ "region"; "rep" ] in
        Alcotest.(check int) "" 2
          (List.length (R.Index.lookup idx [ v "east"; v "cal" ])));
  ]

(* ---- Incremental ---- *)

let incremental_tests =
  [
    case "initial state equals batch" (fun () ->
        let t =
          E.Incremental.create ~r:PD.table5_r ~s:PD.table5_s
            ~key:PD.example3_key PD.ilfds_i1_i8
        in
        let batch =
          E.Identify.run ~r:PD.table5_r ~s:PD.table5_s ~key:PD.example3_key
            PD.ilfds_i1_i8
        in
        Alcotest.(check bool) "" true
          (mt_entries_equal
             (E.Incremental.matching_table t)
             batch.matching_table));
    case "insertion creating a match reports it" (fun () ->
        let t =
          E.Incremental.create ~r:PD.table5_r ~s:PD.table5_s
            ~key:PD.example3_key PD.ilfds_i1_i8
        in
        (* An S tuple matching the so-far-unmatched TwinCities/Indian R
           tuple: its cuisine derives to Indian via I4. *)
        let s_tuple =
          R.Tuple.make
            (R.Relation.schema PD.table5_s)
            [ v "TwinCities"; v "Mughalai"; v "Dakota" ]
        in
        (* R(TwinCities, Indian) has NULL speciality; the match needs the
           R side too. Add the entity rule first. *)
        let t =
          E.Incremental.add_ilfd t
            (Ilfd.parse
               "name = TwinCities & street = Co.B3 -> speciality = Mughalai")
        in
        let t, created = E.Incremental.insert_s t s_tuple in
        Alcotest.(check int) "one new match" 1 (List.length created);
        Alcotest.(check int) "" 4
          (E.Matching_table.cardinality (E.Incremental.matching_table t)));
    case "insertion with underivable key attrs matches nothing" (fun () ->
        let telemetry = Telemetry.create () in
        let t =
          E.Incremental.create ~telemetry ~r:PD.table5_r ~s:PD.table5_s
            ~key:PD.example3_key PD.ilfds_i1_i8
        in
        (* Example 3 ships two R tuples whose speciality no ILFD reaches
           (the TwinCities Indian/Vietnamese rows) — the initial batch
           accounting must already show them. *)
        let before_r = List.length (E.Incremental.unmatched_r t) in
        Alcotest.(check int) "initial unmatched_r" 2 before_r;
        Alcotest.(check int) "initial unmatched_s" 0
          (List.length (E.Incremental.unmatched_s t));
        let r_tuple =
          R.Tuple.make
            (R.Relation.schema PD.table5_r)
            [ v "Mystery"; v "Fusion"; v "Nowhere.St." ]
        in
        let t, created = E.Incremental.insert_r t r_tuple in
        Alcotest.(check int) "" 0 (List.length created);
        Alcotest.(check int) "table unchanged" 3
          (E.Matching_table.cardinality (E.Incremental.matching_table t));
        (* No ILFD derives its speciality, so its K_Ext stays NULL: the
           tuple must surface in the unmatched accounting, not vanish. *)
        Alcotest.(check int) "one more unmatched R tuple" (before_r + 1)
          (List.length (E.Incremental.unmatched_r t));
        Alcotest.(check int) "unmatched_s untouched" 0
          (List.length (E.Incremental.unmatched_s t));
        Alcotest.(check int) "null_key counter" 1
          (Telemetry.counter telemetry "incremental.null_key");
        Alcotest.(check int) "inserts counter" 1
          (Telemetry.counter telemetry "incremental.inserts");
        Alcotest.(check int) "pairs_added counter" 0
          (Telemetry.counter telemetry "incremental.pairs_added"));
    check_raises_any "key violation surfaces on insert" (fun () ->
        let t =
          E.Incremental.create ~r:PD.table5_r ~s:PD.table5_s
            ~key:PD.example3_key PD.ilfds_i1_i8
        in
        (* (TwinCities, Chinese) already exists with that key. *)
        E.Incremental.insert_r t
          (R.Tuple.make
             (R.Relation.schema PD.table5_r)
             [ v "TwinCities"; v "Chinese"; v "Elsewhere" ]));
    case "add_ilfd is monotone" (fun () ->
        let t =
          E.Incremental.create ~r:PD.table5_r ~s:PD.table5_s
            ~key:PD.example3_key
            (List.filteri (fun i _ -> i < 4) PD.ilfds_i1_i8)
        in
        let before = E.Incremental.matching_table t in
        let t =
          List.fold_left E.Incremental.add_ilfd t
            (List.filteri (fun i _ -> i >= 4) PD.ilfds_i1_i8)
        in
        let after = E.Incremental.matching_table t in
        Alcotest.(check bool) "before subset of after" true
          (List.for_all
             (E.Matching_table.mem after)
             (E.Matching_table.entries before));
        Alcotest.(check int) "" 3 (E.Matching_table.cardinality after));
    qtest ~count:10 "random insert order equals batch"
      QCheck2.Gen.(int_range 0 10_000)
      (fun seed ->
        (* NULL streets leave some specialities underivable, so the
           NULL-key (unmatched) accounting is non-trivially exercised. *)
        let inst =
          Workload.Restaurant.generate
            {
              Workload.Restaurant.default with
              n_entities = 20;
              null_street_rate = 0.25;
              seed;
            }
        in
        (* Start empty, stream all tuples in, compare with batch. *)
        let empty_r =
          R.Relation.empty (R.Relation.schema inst.r)
            ~keys:(R.Relation.declared_keys inst.r) ()
        in
        let empty_s =
          R.Relation.empty (R.Relation.schema inst.s)
            ~keys:(R.Relation.declared_keys inst.s) ()
        in
        let t =
          E.Incremental.create ~r:empty_r ~s:empty_s ~key:inst.key inst.ilfds
        in
        let t =
          List.fold_left
            (fun t tuple -> fst (E.Incremental.insert_r t tuple))
            t (R.Relation.tuples inst.r)
        in
        let t =
          List.fold_left
            (fun t tuple -> fst (E.Incremental.insert_s t tuple))
            t (R.Relation.tuples inst.s)
        in
        let batch =
          E.Identify.run ~r:inst.r ~s:inst.s ~key:inst.key inst.ilfds
        in
        (* The NULL-key accounting must agree tuple-for-tuple, not just
           the matches. *)
        mt_entries_equal
          (E.Incremental.matching_table t)
          batch.matching_table
        && E.Incremental.unmatched_r t = batch.unmatched_r
        && E.Incremental.unmatched_s t = batch.unmatched_s);
    case "outcome integrates like batch" (fun () ->
        let t =
          E.Incremental.create ~r:PD.table5_r ~s:PD.table5_s
            ~key:PD.example3_key PD.ilfds_i1_i8
        in
        let o = E.Incremental.outcome t in
        let table = E.Integrate.integrated_table ~key:PD.example3_key o in
        Alcotest.(check int) "" 6 (R.Relation.cardinality table));
    case "first-rule mode inserts through disagreeing rules" (fun () ->
        let t =
          E.Incremental.create
            ~r:(relation [ "name" ] [ [ "name" ] ] [])
            ~s:(relation [ "name"; "cuisine" ] [ [ "name" ] ]
                  [ [ "alpha"; "first" ] ])
            ~key:(E.Extended_key.make [ "name"; "cuisine" ])
            [
              Ilfd.parse "name = alpha -> cuisine = first";
              Ilfd.parse "name = alpha -> cuisine = second";
            ]
        in
        let r_tuple =
          R.Tuple.make (R.Schema.of_names [ "name" ]) [ v "alpha" ]
        in
        (* Cut semantics: the first rule wins, deriving cuisine=first and
           matching the S tuple. *)
        let _, created = E.Incremental.insert_r t r_tuple in
        Alcotest.(check int) "" 1 (List.length created));
    check_raises_any "check-conflicts mode raises on a conflicting insert"
      (fun () ->
        (* Regression: this insert used to die on [assert false] instead
           of reporting the conflict. *)
        let t =
          E.Incremental.create ~mode:Ilfd.Apply.Check_conflicts
            ~r:(relation [ "name" ] [ [ "name" ] ] [])
            ~s:(relation [ "name"; "cuisine" ] [ [ "name" ] ]
                  [ [ "alpha"; "first" ] ])
            ~key:(E.Extended_key.make [ "name"; "cuisine" ])
            [
              Ilfd.parse "name = alpha -> cuisine = first";
              Ilfd.parse "name = alpha -> cuisine = second";
            ]
        in
        let r_tuple =
          R.Tuple.make (R.Schema.of_names [ "name" ]) [ v "alpha" ]
        in
        ignore (E.Incremental.insert_r t r_tuple));
    case "check-conflicts mode accepts agreeing rules" (fun () ->
        let t =
          E.Incremental.create ~mode:Ilfd.Apply.Check_conflicts
            ~r:(relation [ "name" ] [ [ "name" ] ] [])
            ~s:(relation [ "name"; "cuisine" ] [ [ "name" ] ]
                  [ [ "alpha"; "same" ] ])
            ~key:(E.Extended_key.make [ "name"; "cuisine" ])
            [
              Ilfd.parse "name = alpha -> cuisine = same";
              Ilfd.parse "name = alpha -> cuisine = same";
            ]
        in
        let r_tuple =
          R.Tuple.make (R.Schema.of_names [ "name" ]) [ v "alpha" ]
        in
        let _, created = E.Incremental.insert_r t r_tuple in
        Alcotest.(check int) "" 1 (List.length created));
    check_raises_any "check-conflicts mode survives add_ilfd" (fun () ->
        (* The mode must be preserved when the knowledge base grows: the
           recreate inside add_ilfd re-derives under Check_conflicts and
           hits the disagreement. *)
        let t =
          E.Incremental.create ~mode:Ilfd.Apply.Check_conflicts
            ~r:(relation [ "name" ] [ [ "name" ] ] [ [ "alpha" ] ])
            ~s:(relation [ "name"; "cuisine" ] [ [ "name" ] ] [])
            ~key:(E.Extended_key.make [ "name"; "cuisine" ])
            [ Ilfd.parse "name = alpha -> cuisine = first" ]
        in
        ignore
          (E.Incremental.add_ilfd t
             (Ilfd.parse "name = alpha -> cuisine = second")));
  ]

(* ---- Mine ---- *)

let mine_tests =
  [
    case "mines the exact speciality->cuisine map" (fun () ->
        let inst =
          Workload.Restaurant.generate
            { Workload.Restaurant.default with n_entities = 80; seed = 9 }
        in
        let mined =
          Ilfd.Mine.mine ~min_support:1 inst.world ~lhs:[ "speciality" ]
            ~rhs:"cuisine"
        in
        Alcotest.(check bool) "all exact" true
          (List.for_all (fun c -> c.Ilfd.Mine.confidence = 1.0) mined);
        (* Every mined rule is consistent with the hidden map. *)
        Alcotest.(check bool) "consistent with pool" true
          (List.for_all
             (fun (c : Ilfd.Mine.candidate) ->
               match Ilfd.antecedent c.ilfd, Ilfd.consequent c.ilfd with
               | [ a ], [ b ] ->
                   Array.exists
                     (fun (sp, cu) ->
                       V.equal a.value (v sp) && V.equal b.value (v cu))
                     Workload.Pools.speciality_cuisine
               | _ -> false)
             mined));
    case "min_support filters rare patterns" (fun () ->
        (* Relations are sets, so an id column keeps support > 1. *)
        let r =
          relation [ "id"; "a"; "b" ] []
            [ [ "r1"; "x"; "1" ]; [ "r2"; "x"; "1" ]; [ "r3"; "y"; "2" ] ]
        in
        let all = Ilfd.Mine.mine ~min_support:1 r ~lhs:[ "a" ] ~rhs:"b" in
        let frequent = Ilfd.Mine.mine ~min_support:2 r ~lhs:[ "a" ] ~rhs:"b" in
        Alcotest.(check int) "" 2 (List.length all);
        Alcotest.(check int) "" 1 (List.length frequent));
    case "confidence below 1 excluded by default" (fun () ->
        let r =
          relation [ "id"; "a"; "b" ] []
            [ [ "r1"; "x"; "1" ]; [ "r2"; "x"; "1" ]; [ "r3"; "x"; "2" ] ]
        in
        Alcotest.(check int) "" 0
          (List.length (Ilfd.Mine.mine r ~lhs:[ "a" ] ~rhs:"b"));
        match Ilfd.Mine.mine ~min_confidence:0.6 r ~lhs:[ "a" ] ~rhs:"b" with
        | [ c ] ->
            Alcotest.(check bool) "majority value" true
              (Float.abs (c.confidence -. (2.0 /. 3.0)) < 1e-9)
        | _ -> Alcotest.fail "one candidate expected");
    case "nulls are ignored" (fun () ->
        let r =
          R.Relation.create
            (R.Schema.of_names [ "a"; "b" ])
            [ [ v "x"; V.Null ]; [ v "x"; v "1" ]; [ V.Null; v "2" ] ]
        in
        match Ilfd.Mine.mine ~min_support:1 r ~lhs:[ "a" ] ~rhs:"b" with
        | [ c ] -> Alcotest.(check int) "" 1 c.support
        | _ -> Alcotest.fail "one candidate expected");
    case "multi-attribute antecedents" (fun () ->
        let r =
          relation [ "a"; "b"; "c" ] []
            [ [ "x"; "1"; "p" ]; [ "x"; "2"; "q" ]; [ "x"; "1"; "p" ] ]
        in
        let mined =
          Ilfd.Mine.mine ~min_support:1 r ~lhs:[ "a"; "b" ] ~rhs:"c"
        in
        Alcotest.(check int) "" 2 (List.length mined));
    case "mine_pairs covers the schema" (fun () ->
        let r = relation [ "a"; "b" ] [] [ [ "x"; "1" ]; [ "y"; "2" ] ] in
        let mined = Ilfd.Mine.mine_pairs ~min_support:1 r in
        (* a->b and b->a, one rule per distinct value on each side. *)
        Alcotest.(check int) "" 4 (List.length mined));
    case "validate against a second relation" (fun () ->
        let train = relation [ "a"; "b" ] [] [ [ "x"; "1" ] ] in
        let test_consistent = relation [ "a"; "b" ] [] [ [ "x"; "1" ] ] in
        let test_violating = relation [ "a"; "b" ] [] [ [ "x"; "2" ] ] in
        match Ilfd.Mine.mine ~min_support:1 train ~lhs:[ "a" ] ~rhs:"b" with
        | [ c ] ->
            Alcotest.(check bool) "" true
              (Ilfd.Mine.validate test_consistent c);
            Alcotest.(check bool) "" false
              (Ilfd.Mine.validate test_violating c)
        | _ -> Alcotest.fail "one candidate expected");
    case "identification with exactly-mined rules is sound" (fun () ->
        let inst =
          Workload.Restaurant.generate
            { Workload.Restaurant.default with n_entities = 60; seed = 17 }
        in
        let mined =
          Ilfd.Mine.exact
            (Ilfd.Mine.mine ~min_support:1 inst.world ~lhs:[ "speciality" ]
               ~rhs:"cuisine"
            @ Ilfd.Mine.mine ~min_support:1 inst.world
                ~lhs:[ "name"; "street" ] ~rhs:"speciality")
        in
        let o = E.Identify.run ~r:inst.r ~s:inst.s ~key:inst.key mined in
        let m = Workload.Metrics.evaluate ~truth:inst.truth o.matching_table in
        Alcotest.(check (float 0.0001)) "precision" 1.0 m.precision);
  ]

(* ---- Align ---- *)

let align_tests =
  [
    case "rename resolves synonyms" (fun () ->
        let r = relation [ "rest_name" ] [ [ "rest_name" ] ] [ [ "X" ] ] in
        let out =
          E.Align.apply
            [ E.Align.Rename { from_attr = "rest_name"; to_attr = "name" } ]
            r
        in
        Alcotest.(check (list string)) "" [ "name" ]
          (R.Schema.names (R.Relation.schema out));
        Alcotest.(check (list (list string))) "key follows" [ [ "name" ] ]
          (R.Relation.keys out));
    case "map converts units, skips NULL" (fun () ->
        let r =
          R.Relation.create
            (R.Schema.of_names [ "yen" ])
            [ [ vi 1000 ]; [ V.Null ] ]
        in
        let out =
          E.Align.apply
            [ E.Align.Map
                { from_attr = "yen"; to_attr = "usd";
                  f = E.Align.scale_float 0.007 } ]
            r
        in
        let values =
          List.map
            (fun t -> R.Tuple.nth t 0)
            (R.Relation.tuples out)
        in
        Alcotest.(check bool) "scaled" true
          (List.exists (fun x -> V.eq3 x (R.Value.float 7.0) = V.True) values);
        Alcotest.(check bool) "null kept" true
          (List.exists V.is_null values));
    case "combine merges split names and drops sources" (fun () ->
        let r =
          relation [ "last"; "first"; "age" ] []
            [ [ "Smith"; "Jo"; "44" ] ]
        in
        let out =
          E.Align.apply
            [ E.Align.Combine
                { from_attrs = [ "first"; "last" ]; to_attr = "name";
                  f = E.Align.concat_strings " " } ]
            r
        in
        Alcotest.(check (list string)) "" [ "age"; "name" ]
          (R.Schema.names (R.Relation.schema out));
        let t = List.hd (R.Relation.tuples out) in
        Alcotest.(check string) "" "Jo Smith"
          (V.to_string (R.Tuple.get (R.Relation.schema out) t "name")));
    case "combine invalidates keys over consumed attrs" (fun () ->
        let r =
          relation [ "last"; "first" ] [ [ "last"; "first" ] ]
            [ [ "Smith"; "Jo" ] ]
        in
        let out =
          E.Align.apply
            [ E.Align.Combine
                { from_attrs = [ "first"; "last" ]; to_attr = "name";
                  f = E.Align.concat_strings " " } ]
            r
        in
        Alcotest.(check (list (list string))) "" []
          (R.Relation.declared_keys out));
    case "drop removes an attribute" (fun () ->
        let r = relation [ "a"; "b" ] [] [ [ "1"; "2" ] ] in
        let out = E.Align.apply [ E.Align.Drop "b" ] r in
        Alcotest.(check (list string)) "" [ "a" ]
          (R.Schema.names (R.Relation.schema out)));
    check_raises_any "scale_float on strings rejected" (fun () ->
        E.Align.scale_float 2.0 (v "oops"));
    case "concat_strings of all NULL is NULL" (fun () ->
        Alcotest.(check bool) "" true
          (V.is_null (E.Align.concat_strings " " [ V.Null; V.Null ])));
  ]

(* ---- Fusion ---- *)

let fusion_outcome =
  E.Identify.run ~r:PD.table5_r ~s:PD.table5_s ~key:PD.example3_key
    PD.ilfds_i1_i8

let fusion_tests =
  [
    case "fuse yields one row per entity" (fun () ->
        let fused = E.Fusion.fuse fusion_outcome in
        (* 3 merged + 2 R-only + 1 S-only = 6 entities. *)
        Alcotest.(check int) "" 6 (R.Relation.cardinality fused);
        Alcotest.(check (list string)) "union schema"
          [ "name"; "cuisine"; "street"; "speciality"; "county" ]
          (R.Schema.names (R.Relation.schema fused)));
    case "merged rows carry both sides' attributes" (fun () ->
        let fused = E.Fusion.fuse fusion_outcome in
        let schema = R.Relation.schema fused in
        let anjuman =
          Option.get
            (R.Relation.find_opt
               (fun t -> V.to_string (R.Tuple.get schema t "name") = "Anjuman")
               fused)
        in
        Alcotest.(check string) "street from R" "LeSalleAve."
          (V.to_string (R.Tuple.get schema anjuman "street"));
        Alcotest.(check string) "county from S" "Mpls."
          (V.to_string (R.Tuple.get schema anjuman "county")));
    case "conflicts empty on the paper's data" (fun () ->
        Alcotest.(check int) "" 0
          (List.length (E.Fusion.conflicts fusion_outcome)));
    case "conflicting values raise under Prefer_non_null" (fun () ->
        let r = relation [ "k"; "phone" ] [ [ "k" ] ] [ [ "e1"; "111" ] ] in
        let s = relation [ "k"; "phone" ] [ [ "k" ] ] [ [ "e1"; "222" ] ] in
        let key = E.Extended_key.make [ "k" ] in
        let o = E.Identify.run ~r ~s ~key [] in
        Alcotest.(check int) "one conflict" 1
          (List.length (E.Fusion.conflicts o));
        Alcotest.(check bool) "" true
          (match E.Fusion.fuse o with
          | _ -> false
          | exception E.Fusion.Inconsistent { attribute = "phone"; _ } -> true));
    case "policies pick sides" (fun () ->
        let r = relation [ "k"; "phone" ] [ [ "k" ] ] [ [ "e1"; "111" ] ] in
        let s = relation [ "k"; "phone" ] [ [ "k" ] ] [ [ "e1"; "222" ] ] in
        let key = E.Extended_key.make [ "k" ] in
        let o = E.Identify.run ~r ~s ~key [] in
        let value_of fused =
          V.to_string
            (R.Tuple.get
               (R.Relation.schema fused)
               (List.hd (R.Relation.tuples fused))
               "phone")
        in
        Alcotest.(check string) "left" "111"
          (value_of (E.Fusion.fuse ~default:E.Fusion.Prefer_left o));
        Alcotest.(check string) "right" "222"
          (value_of (E.Fusion.fuse ~default:E.Fusion.Prefer_right o));
        Alcotest.(check string) "custom" "111/222"
          (value_of
             (E.Fusion.fuse
                ~overrides:
                  [ ("phone",
                     E.Fusion.Resolve
                       (fun a b ->
                         v (V.to_string a ^ "/" ^ V.to_string b))) ]
                o)));
    case "NULL never conflicts" (fun () ->
        let r =
          R.Relation.create
            (R.Schema.of_names [ "k"; "phone" ])
            ~keys:[ [ "k" ] ]
            [ [ v "e1"; V.Null ] ]
        in
        let s = relation [ "k"; "phone" ] [ [ "k" ] ] [ [ "e1"; "222" ] ] in
        let key = E.Extended_key.make [ "k" ] in
        let o = E.Identify.run ~r ~s ~key [] in
        let fused = E.Fusion.fuse o in
        Alcotest.(check string) "" "222"
          (V.to_string
             (R.Tuple.get
                (R.Relation.schema fused)
                (List.hd (R.Relation.tuples fused))
                "phone")));
  ]

(* ---- Cluster ---- *)

let cluster_tests =
  [
    case "two-database clustering equals pairwise identify" (fun () ->
        let result =
          E.Cluster.integrate ~key:PD.example3_key PD.ilfds_i1_i8
            [ ("r", PD.table5_r); ("s", PD.table5_s) ]
        in
        Alcotest.(check int) "3 clusters" 3 (List.length result.clusters);
        Alcotest.(check int) "no violations" 0
          (List.length result.violations);
        Alcotest.(check bool) "pairwise consistent" true
          (E.Cluster.pairwise_consistent ~key:PD.example3_key PD.ilfds_i1_i8
             [ ("r", PD.table5_r); ("s", PD.table5_s) ]
             result));
    case "three databases chain transitively" (fun () ->
        let mk rows =
          relation [ "k"; "x" ] [ [ "k" ] ] rows
        in
        let key = E.Extended_key.make [ "k" ] in
        let result =
          E.Cluster.integrate ~key []
            [ ("a", mk [ [ "e1"; "1" ] ]);
              ("b", mk [ [ "e1"; "2" ]; [ "e2"; "3" ] ]);
              ("c", mk [ [ "e1"; "4" ]; [ "e9"; "5" ] ]) ]
        in
        Alcotest.(check int) "one 3-way cluster, one 0-way" 1
          (List.length result.clusters);
        (match result.clusters with
        | [ c ] -> Alcotest.(check int) "3 members" 3 (List.length c.members)
        | _ -> Alcotest.fail "one cluster expected");
        Alcotest.(check int) "singletons" 2 (List.length result.singletons));
    case "incomplete extended key stays undetermined" (fun () ->
        let a = relation [ "k"; "x" ] [ [ "k" ] ] [ [ "e1"; "1" ] ] in
        let b = relation [ "k"; "y" ] [ [ "k" ] ] [ [ "e1"; "2" ] ] in
        let key = E.Extended_key.make [ "k"; "z" ] in
        let result = E.Cluster.integrate ~key [] [ ("a", a); ("b", b) ] in
        Alcotest.(check int) "" 0 (List.length result.clusters);
        Alcotest.(check int) "" 2 (List.length result.undetermined));
    case "generalised uniqueness violation detected" (fun () ->
        (* Two tuples of the same DB sharing the extended-key vector:
           the key {x} is not a key of db a. *)
        let a = relation [ "k"; "x" ] [ [ "k" ] ]
            [ [ "e1"; "same" ]; [ "e2"; "same" ] ] in
        let b = relation [ "j"; "x" ] [ [ "j" ] ] [ [ "f1"; "same" ] ] in
        let key = E.Extended_key.make [ "x" ] in
        let result = E.Cluster.integrate ~key [] [ ("a", a); ("b", b) ] in
        Alcotest.(check int) "" 1 (List.length result.violations));
    check_raises_any "duplicate db names rejected" (fun () ->
        E.Cluster.integrate ~key:PD.example3_key []
          [ ("x", PD.table5_r); ("x", PD.table5_s) ]);
    case "clusters use derived values" (fun () ->
        let result =
          E.Cluster.integrate ~key:PD.example3_key PD.ilfds_i1_i8
            [ ("r", PD.table5_r); ("s", PD.table5_s) ]
        in
        Alcotest.(check bool) "Gyros cluster exists" true
          (List.exists
             (fun (c : E.Cluster.cluster) ->
               List.exists
                 (fun kv -> V.eq3 kv (v "Gyros") = V.True)
                 c.key_values)
             result.clusters));
  ]

(* ---- Explain ---- *)

let explain_tests =
  [
    case "one explanation per matched pair" (fun () ->
        let es =
          E.Explain.matches ~r:PD.table5_r ~s:PD.table5_s
            ~key:PD.example3_key PD.ilfds_i1_i8
        in
        Alcotest.(check int) "" 3 (List.length es));
    case "It'sGreek explanation shows the I7+I8 chain" (fun () ->
        let es =
          E.Explain.matches ~r:PD.table5_r ~s:PD.table5_s
            ~key:PD.example3_key PD.ilfds_i1_i8
        in
        let greek =
          List.find
            (fun (e : E.Explain.explanation) ->
              V.to_string (R.Tuple.nth e.entry.E.Matching_table.r_key 0)
              = "It'sGreek")
            es
        in
        let attrs =
          List.map
            (fun (d : Ilfd.Apply.derivation) -> d.attribute)
            greek.r_derivations
        in
        (* The chain derives the scratch county before speciality. *)
        Alcotest.(check bool) "county step" true (List.mem "county" attrs);
        Alcotest.(check bool) "speciality step" true
          (List.mem "speciality" attrs));
    case "agreed key values are reported" (fun () ->
        let es =
          E.Explain.matches ~r:PD.table2_r ~s:PD.table2_s
            ~key:PD.example2_key [ PD.example2_ilfd ]
        in
        match es with
        | [ e ] ->
            Alcotest.(check (list string)) ""
              [ "name=TwinCities"; "cuisine=Indian" ]
              (List.map
                 (fun (a, value) ->
                   Printf.sprintf "%s=%s" a (V.to_string value))
                 e.key_values)
        | _ -> Alcotest.fail "one explanation expected");
    case "every derivation step carries an Armstrong proof" (fun () ->
        let es =
          E.Explain.matches ~r:PD.table5_r ~s:PD.table5_s
            ~key:PD.example3_key PD.ilfds_i1_i8
        in
        let r_schema = R.Relation.schema PD.table5_r in
        let s_schema = R.Relation.schema PD.table5_s in
        List.iter
          (fun (e : E.Explain.explanation) ->
            let tr =
              Option.get
                (R.Relation.find_opt
                   (fun t ->
                     R.Tuple.equal
                       (R.Tuple.project r_schema t [ "name"; "cuisine" ])
                       e.entry.E.Matching_table.r_key)
                   PD.table5_r)
            in
            let ts =
              Option.get
                (R.Relation.find_opt
                   (fun t ->
                     R.Tuple.equal
                       (R.Tuple.project s_schema t [ "name"; "speciality" ])
                       e.entry.s_key)
                   PD.table5_s)
            in
            List.iter
              (fun d ->
                Alcotest.(check bool) "r proof" true
                  (Option.is_some
                     (E.Explain.prove_derivation PD.ilfds_i1_i8 r_schema tr d)))
              e.r_derivations;
            List.iter
              (fun d ->
                Alcotest.(check bool) "s proof" true
                  (Option.is_some
                     (E.Explain.prove_derivation PD.ilfds_i1_i8 s_schema ts d)))
              e.s_derivations)
          es);
    case "check-conflicts explanation reports the witness" (fun () ->
        (* Regression: a conflicting instance used to kill the explainer
           with [assert false]; it must raise [Conflict_found] with the
           disagreeing derivations attached, like the pipeline itself. *)
        let explain mode =
          E.Explain.matches ?mode
            ~r:(relation [ "name" ] [ [ "name" ] ] [ [ "alpha" ] ])
            ~s:
              (relation
                 [ "name"; "cuisine" ]
                 [ [ "name" ] ]
                 [ [ "alpha"; "first" ] ])
            ~key:(E.Extended_key.make [ "name"; "cuisine" ])
            [
              Ilfd.parse "name = alpha -> cuisine = first";
              Ilfd.parse "name = alpha -> cuisine = second";
            ]
        in
        (match explain (Some Ilfd.Apply.Check_conflicts) with
        | _ -> Alcotest.fail "Conflict_found expected"
        | exception Ilfd.Apply.Conflict_found c ->
            Alcotest.(check string) "attribute" "cuisine" c.attribute;
            Alcotest.(check string) "first" "first" (V.to_string c.first);
            Alcotest.(check string) "second" "second" (V.to_string c.second));
        (* First-rule (cut) semantics still explains the same instance. *)
        Alcotest.(check int) "first-rule explains" 1
          (List.length (explain None)));
    case "render mentions rules and values" (fun () ->
        let es =
          E.Explain.matches ~r:PD.table2_r ~s:PD.table2_s
            ~key:PD.example2_key [ PD.example2_ilfd ]
        in
        let out = E.Explain.render es in
        let contains needle =
          let nl = String.length needle and ol = String.length out in
          let rec scan i =
            i + nl <= ol && (String.sub out i nl = needle || scan (i + 1))
          in
          scan 0
        in
        List.iter
          (fun needle ->
            Alcotest.(check bool) needle true (contains needle))
          [ "TwinCities"; "cuisine=Indian"; "Mughalai" ]);
  ]

(* ---- Parallel ---- *)

let parallel_tests =
  [
    case "map_chunks on empty range is total for every jobs" (fun () ->
        (* n = 0 must not crash (the old assert-false path): the clamped
           chunking is a single empty range run inline — a no-op chunk,
           no domain spawn — whatever the jobs count. *)
        List.iter
          (fun jobs ->
            Alcotest.(check (list (pair int int)))
              (Printf.sprintf "jobs=%d" jobs)
              [ (0, 0) ]
              (Parallel.map_chunks ~jobs 0 (fun ~start ~stop ->
                   (start, stop)));
            Alcotest.(check int)
              (Printf.sprintf "jobs=%d chunk_count" jobs)
              1
              (Parallel.chunk_count ~jobs 0))
          [ 1; 2; 3; 4 ]);
    case "map_chunks on singleton range is one full chunk" (fun () ->
        List.iter
          (fun jobs ->
            Alcotest.(check (list (pair int int)))
              (Printf.sprintf "jobs=%d" jobs)
              [ (0, 1) ]
              (Parallel.map_chunks ~jobs 1 (fun ~start ~stop ->
                   (start, stop))))
          [ 1; 2; 3; 4 ]);
    qtest ~count:50 "map_chunks covers [0, n) in order for any jobs"
      QCheck2.Gen.(pair (0 -- 33) (1 -- 4))
      (fun (n, jobs) ->
        (* Chunks must be ascending, contiguous, and cover exactly
           [0, n) — including the degenerate n = 0 and n = 1 inputs. *)
        let chunks =
          Parallel.map_chunks ~jobs n (fun ~start ~stop -> (start, stop))
        in
        let rec contiguous at = function
          | [] -> at = n
          | (start, stop) :: rest ->
              start = at && stop >= start && contiguous stop rest
        in
        List.length chunks = Parallel.chunk_count ~jobs n
        && contiguous 0 chunks);
  ]

let () =
  Alcotest.run "extensions"
    [
      ("explain", explain_tests);
      ("aggregate", aggregate_tests);
      ("index", index_tests);
      ("incremental", incremental_tests);
      ("mine", mine_tests);
      ("align", align_tests);
      ("fusion", fusion_tests);
      ("cluster", cluster_tests);
      ("parallel", parallel_tests);
    ]
