(* Tests for the compiled semi-naive ILFD fixpoint: byte-identical
   agreement with the per-tuple recursive engine across generated
   scenarios (including conflicting-rule corruptions), exactness of
   First_rule semantics under stratification, the recursive fallback on
   cyclic families, the intern pool's match-class contract, and the
   covering-bucket blocking short-cut. *)

module R = Relational
module V = R.Value
module E = Entity_id
open Helpers

let case name f = Alcotest.test_case name `Quick f

let extension_agrees (sc : Checker.Scenario.t) rel =
  let target = E.Identify.extension_schema rel sc.key in
  let fixpoint = Ilfd.Apply.extend_relation rel ~target sc.ilfds in
  let recursive = Ilfd.Apply.extend_relation_recursive rel ~target sc.ilfds in
  R.Relation.equal fixpoint recursive

let agreement_tests =
  [
    case "fixpoint = recursive on generated scenarios" (fun () ->
        (* The scenario generator covers the interesting terrain: NULLed
           attributes, typos, homonyms, duplicate injection, swapped
           fields and — crucially — appended conflicting ILFDs, where
           naive round-based chasing diverges from first-rule-wins
           unless stratification restores the recursive order. *)
        for seed = 1 to 40 do
          let sc = Checker.Scenario.generate ~seed in
          Alcotest.(check bool)
            (Printf.sprintf "seed %d R agrees" seed)
            true (extension_agrees sc sc.r);
          Alcotest.(check bool)
            (Printf.sprintf "seed %d S agrees" seed)
            true (extension_agrees sc sc.s)
        done);
    case "first-rule wins across strata under conflicting rules" (fun () ->
        (* a has two rules that disagree when both fire: b=1 -> a=1
           (needs derived b) and c=1 -> a=2 (fires on a base fact). A
           naive chase assigns a=2 in round one, before b exists; the
           recursive engine derives b first and takes a=1. The evaluator
           must reproduce the recursive answer. *)
        let ilfds =
          [
            Ilfd.make1 [ Ilfd.condition "b" (vi 1) ] "a" (vi 1);
            Ilfd.make1 [ Ilfd.condition "c" (vi 1) ] "a" (vi 2);
            Ilfd.make1 [ Ilfd.condition "c" (vi 1) ] "b" (vi 1);
          ]
        in
        let r =
          R.Relation.create (R.Schema.of_names [ "id"; "c" ]) ~keys:[ [ "id" ] ]
            [ [ vi 7; vi 1 ] ]
        in
        let target =
          R.Schema.concat (R.Relation.schema r) (R.Schema.of_names [ "a"; "b" ])
        in
        Alcotest.(check bool)
          "family compiles" true
          (Ilfd.Fixpoint.supported ~source:(R.Relation.schema r) ~target ilfds);
        let out = Ilfd.Apply.extend_relation r ~target ilfds in
        let a = R.Tuple.get target (List.hd (R.Relation.tuples out)) "a" in
        Alcotest.(check bool) "a = 1 (recursive answer)" true
          (V.equal a (vi 1));
        Alcotest.(check bool) "byte-identical to recursive" true
          (R.Relation.equal out
             (Ilfd.Apply.extend_relation_recursive r ~target ilfds)));
    case "cyclic families fall back and still agree" (fun () ->
        let ilfds =
          [
            Ilfd.make1 [ Ilfd.condition "a" (vi 1) ] "b" (vi 1);
            Ilfd.make1 [ Ilfd.condition "b" (vi 1) ] "a" (vi 1);
          ]
        in
        let r =
          R.Relation.create (R.Schema.of_names [ "id"; "a" ]) ~keys:[ [ "id" ] ]
            [ [ vi 1; vi 1 ]; [ vi 2; V.null ] ]
        in
        let target =
          R.Schema.concat (R.Relation.schema r) (R.Schema.of_names [ "b" ])
        in
        Alcotest.(check bool)
          "not supported" false
          (Ilfd.Fixpoint.supported ~source:(R.Relation.schema r) ~target ilfds);
        Alcotest.(check bool) "fallback agrees" true
          (R.Relation.equal
             (Ilfd.Apply.extend_relation r ~target ilfds)
             (Ilfd.Apply.extend_relation_recursive r ~target ilfds)));
    case "ambiguous numeric rule values disqualify the plan" (fun () ->
        (* 2^53 + 1 has no exact float partner: hash matching on a
           canonical representative is unsound there, so the family
           must take the recursive path (and still agree). *)
        let big = 9007199254740993 in
        let ilfds =
          [ Ilfd.make1 [ Ilfd.condition "n" (vi big) ] "flag" (v "big") ]
        in
        let r =
          R.Relation.create (R.Schema.of_names [ "id"; "n" ]) ~keys:[ [ "id" ] ]
            [ [ vi 1; vi big ]; [ vi 2; vi 3 ] ]
        in
        let target =
          R.Schema.concat (R.Relation.schema r) (R.Schema.of_names [ "flag" ])
        in
        Alcotest.(check bool)
          "not supported" false
          (Ilfd.Fixpoint.supported ~source:(R.Relation.schema r) ~target ilfds);
        Alcotest.(check bool) "fallback agrees" true
          (R.Relation.equal
             (Ilfd.Apply.extend_relation r ~target ilfds)
             (Ilfd.Apply.extend_relation_recursive r ~target ilfds)));
  ]

let intern_tests =
  [
    case "codes round-trip and share structure" (fun () ->
        let vs =
          [
            v "Hunan";
            vi 42;
            V.null;
            V.bool true;
            V.float 2.5;
            v "";
          ]
        in
        List.iter
          (fun x ->
            let c = R.Intern.code x in
            Alcotest.(check bool) "round-trip" true
              (V.equal (R.Intern.value c) x);
            Alcotest.(check int) "stable code" c (R.Intern.code x);
            Alcotest.(check bool) "share is equal" true
              (V.equal (R.Intern.share x) x))
          vs;
        Alcotest.(check int) "NULL is code 0" R.Intern.null_code
          (R.Intern.code V.null));
    case "match codes equate cross-type numeric identity" (fun () ->
        let i = R.Intern.code (vi 3) and f = R.Intern.code (V.float 3.0) in
        Alcotest.(check bool) "distinct storage" true (i <> f);
        Alcotest.(check int) "one match class" (R.Intern.match_code i)
          (R.Intern.match_code f);
        Alcotest.(check bool) "codes_match" true (R.Intern.codes_match i f);
        let g = R.Intern.code (V.float 3.5) in
        Alcotest.(check bool) "3 <> 3.5" false (R.Intern.codes_match i g);
        Alcotest.(check bool) "NULL never matches" false
          (R.Intern.codes_match R.Intern.null_code R.Intern.null_code));
    case "ambiguous magnitudes carry the unsafe sentinel" (fun () ->
        let big = R.Intern.code (vi 9007199254740993) in
        Alcotest.(check int) "unsafe" R.Intern.unsafe_match
          (R.Intern.match_code big);
        (* codes_match must then defer to non_null_eq, which is exact. *)
        Alcotest.(check bool) "still equal to itself" true
          (R.Intern.codes_match big big);
        let bigf = R.Intern.code (V.float 9007199254740994.0) in
        Alcotest.(check bool) "9007199254740993 <> 9007199254740994." false
          (R.Intern.codes_match big bigf));
  ]

(* ---- covering buckets ---- *)

let pair_equal (a1, b1) (a2, b2) = R.Tuple.equal a1 a2 && R.Tuple.equal b1 b2
let pairs_equal = List.equal pair_equal

let covering_tests =
  [
    case "equality-only rules are their own blocking key" (fun () ->
        let rule = Rules.Identity.of_attribute_equalities ~name:"ek" [ "n"; "c" ] in
        Alcotest.(check bool) "equality_only" true
          (Rules.Identity.equality_only rule);
        let mixed =
          Rules.Identity.make ~name:"mixed"
            [
              Rules.Atom.eq_attrs "n";
              Rules.Atom.make
                (Rules.Atom.attr Rules.Atom.Left "n")
                R.Predicate.Eq (Rules.Atom.const (v "x"));
            ]
        in
        Alcotest.(check bool) "constant atom disqualifies" false
          (Rules.Identity.equality_only mixed));
    case "covering partition = naive partition on dirty data" (fun () ->
        (* Duplicates share buckets; NULLs never bucket; the covering
           short-cut must reproduce the nested loop exactly on both. *)
        let rows =
          [
            [ "a"; "1" ]; [ "a"; "1" ]; [ "b"; "2" ]; [ "c"; "1" ];
          ]
        in
        let with_null schema rows =
          R.Relation.of_tuples schema
            (R.Tuple.make schema [ v "a"; V.null ]
            :: List.map (fun cells -> R.Tuple.make schema (List.map v cells))
                 rows)
        in
        let schema = R.Schema.of_names [ "n"; "c" ] in
        let r = with_null schema rows
        and s = with_null schema (List.tl rows) in
        let identity =
          [ Rules.Identity.of_attribute_equalities ~name:"ek" [ "n"; "c" ] ]
        in
        let fast = E.Decision.partition ~identity ~distinctness:[] r s
        and naive = E.Decision.partition_naive ~identity ~distinctness:[] r s in
        let (m1, d1, u1) = fast and (m2, d2, u2) = naive in
        Alcotest.(check bool) "matched" true (pairs_equal m1 m2);
        Alcotest.(check bool) "distinct" true (pairs_equal d1 d2);
        Alcotest.(check bool) "undetermined" true (pairs_equal u1 u2));
  ]

(* ---- per-class fallback and its desync witness ---- *)

(* A plan the compiler supports (safe rule values), over data whose base
   cells carry an integer above 2^53 — the cross-type identity of such
   numerics is ambiguous under interning, so the class holding that row
   must take the per-tuple recursive fallback rather than the compiled
   chase. *)
let fallback_scenario () =
  let huge = 9007199254740993 (* 2^53 + 1 *) in
  let ilfds = [ Ilfd.make1 [ Ilfd.condition "n" (vi 1) ] "flag" (v "one") ] in
  let schema = R.Schema.of_names [ "id"; "n" ] in
  let r =
    R.Relation.of_tuples schema
      [
        R.Tuple.make schema [ vi 1; vi 1 ];
        R.Tuple.make schema [ vi 2; vi huge ];
      ]
  in
  let target = R.Schema.of_names [ "id"; "n"; "flag" ] in
  (huge, ilfds, r, target)

let fallback_tests =
  [
    case "ambiguous base cells take the per-class fallback" (fun () ->
        let _, ilfds, r, target = fallback_scenario () in
        Alcotest.(check bool) "plan supported" true
          (Ilfd.Fixpoint.supported ~source:(R.Relation.schema r) ~target
             ilfds);
        let telemetry = Telemetry.create () in
        let out = Ilfd.Apply.extend_relation ~telemetry r ~target ilfds in
        Alcotest.(check bool) "fallback classes counted" true
          (Telemetry.counter telemetry "ilfd.fixpoint.fallback_classes" > 0);
        let recursive =
          Ilfd.Apply.extend_relation_recursive r ~target ilfds
        in
        Alcotest.(check bool) "agrees with recursive" true
          (R.Relation.equal out recursive));
    case "fallback conflict raises a typed desync witness" (fun () ->
        (* The fallback runs in First_rule mode, where conflicts are
           impossible; if one ever surfaces it must arrive as
           Fallback_desync with the offending tuple inside, not as an
           anonymous assertion failure. Exercised via the injection
           hook. *)
        let huge, ilfds, r, target = fallback_scenario () in
        let injected =
          {
            Ilfd.Apply.attribute = "flag";
            first = v "one";
            second = v "two";
            rule = List.hd ilfds;
          }
        in
        Fun.protect
          ~finally:(fun () ->
            Ilfd.Fixpoint.inject_fallback_conflict := fun _ -> None)
          (fun () ->
            (Ilfd.Fixpoint.inject_fallback_conflict :=
               fun t ->
                 if V.equal (R.Tuple.nth t 1) (vi huge) then Some injected
                 else None);
            match Ilfd.Apply.extend_relation r ~target ilfds with
            | _ -> Alcotest.fail "expected Fallback_desync"
            | exception Ilfd.Fixpoint.Fallback_desync { tuple; conflict } ->
                Alcotest.(check bool) "witness tuple" true
                  (V.equal (R.Tuple.nth tuple 1) (vi huge));
                Alcotest.(check string) "witness attribute" "flag"
                  conflict.attribute);
        (* The hook is restored: the same evaluation succeeds again. *)
        ignore (Ilfd.Apply.extend_relation r ~target ilfds));
  ]

(* ---- telemetry contract ---- *)

let counter_tests =
  [
    case "restaurant family chases in two rounds" (fun () ->
        (* speciality <- (name, street) and county <- street sit in
           stratum 1; cuisine <- speciality in stratum 2. *)
        let inst =
          Workload.Restaurant.generate
            { Workload.Restaurant.default with n_entities = 30; seed = 11 }
        in
        let target = E.Identify.extension_schema inst.r inst.key in
        let telemetry = Telemetry.create () in
        ignore
          (Ilfd.Apply.extend_relation ~telemetry inst.r ~target inst.ilfds);
        let c = Telemetry.counter telemetry in
        Alcotest.(check int) "rounds" 2 (c "ilfd.fixpoint.rounds");
        Alcotest.(check bool) "classes <= tuples" true
          (c "ilfd.fixpoint.classes" <= c "ilfd.tuples");
        Alcotest.(check int) "no fallback classes" 0
          (c "ilfd.fixpoint.fallback_classes"));
    case "fixpoint counters are jobs-invariant" (fun () ->
        let inst =
          Workload.Restaurant.generate
            { Workload.Restaurant.default with n_entities = 30; seed = 11 }
        in
        let target = E.Identify.extension_schema inst.r inst.key in
        let run jobs =
          let telemetry = Telemetry.create () in
          let out =
            Ilfd.Apply.extend_relation ~jobs ~telemetry inst.r ~target
              inst.ilfds
          in
          (Telemetry.counters_stable telemetry, out)
        in
        let c1, o1 = run 1 and c3, o3 = run 3 in
        Alcotest.(check (list (pair string int))) "jobs 1 = jobs 3" c1 c3;
        Alcotest.(check bool) "same rows" true (R.Relation.equal o1 o3));
  ]

let () =
  Alcotest.run "fixpoint"
    [
      ("agreement", agreement_tests);
      ("intern", intern_tests);
      ("covering", covering_tests);
      ("fallback", fallback_tests);
      ("counters", counter_tests);
    ]
