(* Tests for the telemetry subsystem: the sink itself (counters, spans,
   local accumulators, rendering) and its contract with the pipeline —
   counters account for exactly what ran, and everything outside the
   [parallel.*] namespace is identical whatever the job count. *)

module R = Relational
module V = R.Value
module E = Entity_id
module PD = Workload.Paper_data
open Helpers

let case name f = Alcotest.test_case name `Quick f

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i =
    i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1))
  in
  scan 0

(* ---- the sink ---- *)

let sink_tests =
  [
    case "off sink collects nothing" (fun () ->
        let t = Telemetry.off in
        Telemetry.add t "x" 5;
        Telemetry.incr t "x";
        Alcotest.(check bool) "disabled" false (Telemetry.enabled t);
        Alcotest.(check int) "no counter" 0 (Telemetry.counter t "x");
        Alcotest.(check int) "no counters" 0
          (List.length (Telemetry.counters t));
        Alcotest.(check int) "no spans" 0 (List.length (Telemetry.spans t));
        Alcotest.(check int) "span is transparent" 42
          (Telemetry.span t "s" (fun () -> 42)));
    case "counters accumulate and sort" (fun () ->
        let t = Telemetry.create () in
        Telemetry.add t "b" 2;
        Telemetry.incr t "a";
        Telemetry.add t "b" 3;
        Alcotest.(check (list (pair string int)))
          "sorted, summed"
          [ ("a", 1); ("b", 5) ]
          (Telemetry.counters t));
    case "spans count calls and charge a fake clock" (fun () ->
        (* A deterministic clock: each reading advances 10 ms. *)
        let now = ref 0.0 in
        let clock () =
          let t = !now in
          now := t +. 0.010;
          t
        in
        let t = Telemetry.create ~clock () in
        ignore (Telemetry.span t "work" (fun () -> ()));
        ignore (Telemetry.span t "work" (fun () -> ()));
        match Telemetry.spans t with
        | [ { Telemetry.span_name; total_ms; calls } ] ->
            Alcotest.(check string) "name" "work" span_name;
            Alcotest.(check int) "calls" 2 calls;
            Alcotest.(check (float 0.001)) "10 ms per call" 20.0 total_ms
        | other ->
            Alcotest.fail
              (Printf.sprintf "one span expected, got %d" (List.length other)));
    case "span charges even when the body raises" (fun () ->
        let t = Telemetry.create () in
        (try Telemetry.span t "boom" (fun () -> failwith "x")
         with Failure _ -> ());
        match Telemetry.spans t with
        | [ { Telemetry.calls; _ } ] -> Alcotest.(check int) "calls" 1 calls
        | _ -> Alcotest.fail "span expected");
    case "locals merge into the sink" (fun () ->
        let t = Telemetry.create () in
        let l1 = Telemetry.local t and l2 = Telemetry.local t in
        Telemetry.local_add l1 "c" 3;
        Telemetry.local_incr l2 "c";
        Telemetry.local_incr l2 "d";
        Telemetry.merge t l1;
        Telemetry.merge t l2;
        Alcotest.(check int) "c" 4 (Telemetry.counter t "c");
        Alcotest.(check int) "d" 1 (Telemetry.counter t "d"));
    case "local of an off sink is a no-op" (fun () ->
        let t = Telemetry.off in
        let l = Telemetry.local t in
        Telemetry.local_add l "c" 3;
        Telemetry.merge t l;
        Alcotest.(check int) "" 0 (Telemetry.counter t "c"));
    case "counters_stable filters the parallel namespace" (fun () ->
        let t = Telemetry.create () in
        Telemetry.add t "parallel.chunks" 7;
        Telemetry.add t "partition.pairs_naive" 9;
        Alcotest.(check (list (pair string int)))
          ""
          [ ("partition.pairs_naive", 9) ]
          (Telemetry.counters_stable t));
    case "reset clears everything" (fun () ->
        let t = Telemetry.create () in
        Telemetry.incr t "c";
        ignore (Telemetry.span t "s" (fun () -> ()));
        Telemetry.reset t;
        Alcotest.(check int) "counters" 0 (List.length (Telemetry.counters t));
        Alcotest.(check int) "spans" 0 (List.length (Telemetry.spans t)));
    case "json renders finite numbers and expected keys" (fun () ->
        let t = Telemetry.create () in
        Telemetry.add t "partition.pairs_naive" 100;
        Telemetry.add t "blocking.identity.candidates" 0;
        Telemetry.add t "blocking.distinctness.candidates" 0;
        Telemetry.add t "ilfd.tuples" 0;
        Telemetry.add t "ilfd.fixpoint.classes" 0;
        ignore (Telemetry.span t "phase" (fun () -> ()));
        let json = Telemetry.to_json t in
        List.iter
          (fun needle ->
            Alcotest.(check bool) needle true (contains json needle))
          [
            "\"counters\"";
            "\"spans\"";
            "\"derived\"";
            "\"partition.pairs_naive\":100";
            "\"phase\":{\"ms\":";
            "\"candidate_pair_reduction\"";
            "\"ilfd_class_sharing\"";
          ];
        (* The whole point of the guarded quotients: candidates = 0 and
           tuples = 0 must not leak non-finite floats into the JSON. *)
        Alcotest.(check bool) "no nan" false (contains json "nan");
        Alcotest.(check bool) "no inf" false (contains json "inf"));
    case "derived quotients are guarded" (fun () ->
        let t = Telemetry.create () in
        Telemetry.add t "ilfd.tuples" 0;
        Telemetry.add t "ilfd.fixpoint.classes" 0;
        Telemetry.add t "partition.pairs_naive" 0;
        Telemetry.add t "partition.pairs_considered" 0;
        List.iter
          (fun (_, value) ->
            Alcotest.(check bool) "finite" true (Float.is_finite value))
          (Telemetry.derived t));
  ]

(* ---- the pipeline contract ---- *)

let run_paper_pipeline ?(jobs = 1) ?(shards = 1) ?mem_budget () =
  let telemetry = Telemetry.create () in
  let o =
    E.Identify.run ~jobs ~shards ?mem_budget ~telemetry ~r:PD.table5_r
      ~s:PD.table5_s ~key:PD.example3_key PD.ilfds_i1_i8
  in
  (telemetry, o)

let restaurant_instance () =
  Workload.Restaurant.generate
    { Workload.Restaurant.default with n_entities = 40; seed = 7 }

let run_rules_pipeline ?(jobs = 1) ?(shards = 1) ?mem_budget () =
  let telemetry = Telemetry.create () in
  let inst = restaurant_instance () in
  let o =
    E.Identify.run_rules ~jobs ~shards ?mem_budget ~telemetry
      ~identity:[ E.Extended_key.equivalence_rule inst.key ]
      ~r:inst.r ~s:inst.s ~key:inst.key inst.ilfds
  in
  (telemetry, o)

let pipeline_tests =
  [
    case "identify counters match the outcome" (fun () ->
        let t, o = run_paper_pipeline () in
        Alcotest.(check int) "pairs" (List.length o.pairs)
          (Telemetry.counter t "identify.pairs");
        Alcotest.(check int) "unmatched_r" (List.length o.unmatched_r)
          (Telemetry.counter t "identify.unmatched_r");
        Alcotest.(check int) "tuples"
          (R.Relation.cardinality PD.table5_r
          + R.Relation.cardinality PD.table5_s)
          (Telemetry.counter t "ilfd.tuples");
        Alcotest.(check bool) "extend spans present" true
          (List.exists
             (fun s -> s.Telemetry.span_name = "identify.extend_r")
             (Telemetry.spans t)));
    case "partition verdict counters sum to the cross product" (fun () ->
        let t, _ = run_rules_pipeline () in
        let c = Telemetry.counter t in
        Alcotest.(check int) "matched + distinct + undetermined = pairs"
          (c "partition.pairs_naive")
          (c "partition.matched" + c "partition.distinct"
          + c "partition.undetermined"));
    case "blocking counters expose the candidate reduction" (fun () ->
        let t, o = run_rules_pipeline () in
        let c = Telemetry.counter t in
        (* Blocking proposes at most the cross product, exactly the fired
           pairs of the only identity rule, and every match came through
           it. *)
        Alcotest.(check bool) "candidates <= pairs" true
          (c "blocking.identity.candidates" <= c "partition.pairs_naive");
        (* The considered count is precisely what the two blocking passes
           proposed — the actually-enumerated pair space the reduction
           metric divides by. *)
        Alcotest.(check int) "pairs_considered = blocking candidates"
          (c "blocking.identity.candidates"
          + c "blocking.distinctness.candidates")
          (c "partition.pairs_considered");
        Alcotest.(check int) "fired = matched" (List.length o.pairs)
          (c "blocking.identity.fired");
        Alcotest.(check bool) "per-rule breakdown present" true
          (List.exists
             (fun (name, _) ->
               contains name "blocking.identity.rule."
               && contains name ".fired")
             (Telemetry.counters t)));
    case "fixpoint counters are canonical" (fun () ->
        (* Two tuples agreeing on every attribute the family can read
           (the key id is irrelevant to it) are one derivation class;
           the one-rule family stratifies into a single round, derives
           cuisine once per class and twice across rows. *)
        let r =
          R.Relation.create
            (R.Schema.of_names [ "id"; "speciality" ])
            ~keys:[ [ "id" ] ]
            [ [ vi 1; v "Hunan" ]; [ vi 2; v "Hunan" ] ]
        in
        let target =
          R.Schema.concat (R.Relation.schema r) (R.Schema.of_names [ "cuisine" ])
        in
        let telemetry = Telemetry.create () in
        ignore
          (Ilfd.Apply.extend_relation ~telemetry r ~target
             [ Ilfd.parse "speciality = Hunan -> cuisine = Chinese" ]);
        let c = Telemetry.counter telemetry in
        Alcotest.(check int) "tuples" 2 (c "ilfd.tuples");
        Alcotest.(check int) "classes" 1 (c "ilfd.fixpoint.classes");
        Alcotest.(check int) "rounds" 1 (c "ilfd.fixpoint.rounds");
        Alcotest.(check int) "delta facts" 1 (c "ilfd.fixpoint.delta_facts");
        Alcotest.(check int) "fallback classes" 0
          (c "ilfd.fixpoint.fallback_classes");
        Alcotest.(check int) "derivations" 2 (c "ilfd.derivations"));
    case "stable counters are jobs-invariant" (fun () ->
        let t1, _ = run_rules_pipeline ~jobs:1 () in
        let t4, _ = run_rules_pipeline ~jobs:4 () in
        Alcotest.(check (list (pair string int)))
          "jobs 1 = jobs 4"
          (Telemetry.counters_stable t1)
          (Telemetry.counters_stable t4);
        let i1, _ = run_paper_pipeline ~jobs:1 () in
        let i4, _ = run_paper_pipeline ~jobs:3 () in
        Alcotest.(check (list (pair string int)))
          "identify jobs 1 = jobs 3"
          (Telemetry.counters_stable i1)
          (Telemetry.counters_stable i4));
    case "stable counters are shards-invariant" (fun () ->
        (* The 2 KiB budget forces the spill path; spill/shard accounting
           stays in the parallel.* namespace, so the stable sets must
           still be byte-identical. *)
        let t1, _ = run_rules_pipeline ~shards:1 () in
        let t5, _ = run_rules_pipeline ~shards:5 ~mem_budget:2048 () in
        Alcotest.(check (list (pair string int)))
          "shards 1 = shards 5"
          (Telemetry.counters_stable t1)
          (Telemetry.counters_stable t5);
        let i1, _ = run_paper_pipeline ~shards:1 () in
        let i3, _ = run_paper_pipeline ~shards:3 ~mem_budget:2048 () in
        Alcotest.(check (list (pair string int)))
          "identify shards 1 = shards 3"
          (Telemetry.counters_stable i1)
          (Telemetry.counters_stable i3));
    case "disabled telemetry changes nothing" (fun () ->
        let _, on = run_rules_pipeline () in
        let inst = restaurant_instance () in
        let off =
          E.Identify.run_rules
            ~identity:[ E.Extended_key.equivalence_rule inst.key ]
            ~r:inst.r ~s:inst.s ~key:inst.key inst.ilfds
        in
        Alcotest.(check bool) "same outcome" true (on = off));
    case "incremental insertions charge the stored sink" (fun () ->
        let telemetry = Telemetry.create () in
        let t =
          E.Incremental.create ~telemetry ~r:PD.table5_r ~s:PD.table5_s
            ~key:PD.example3_key PD.ilfds_i1_i8
        in
        Telemetry.reset telemetry;
        let s_tuple =
          R.Tuple.make
            (R.Relation.schema PD.table5_s)
            [ v "Mystery"; v "Vegan"; v "Hennepin" ]
        in
        let _, _ = E.Incremental.insert_s t s_tuple in
        Alcotest.(check int) "inserts" 1
          (Telemetry.counter telemetry "incremental.inserts");
        Alcotest.(check bool) "insert span" true
          (List.exists
             (fun s -> s.Telemetry.span_name = "incremental.insert")
             (Telemetry.spans telemetry)));
  ]

let () =
  Alcotest.run "telemetry"
    [ ("sink", sink_tests); ("pipeline", pipeline_tests) ]
