(* Tests for the relational substrate: values and 3VL, schemas, tuples,
   relations and keys, the algebra (including outer joins), key analysis,
   CSV round-trips, and the pretty printer. *)

module R = Relational
module V = R.Value

open Helpers

let case name f = Alcotest.test_case name `Quick f
let truth = Alcotest.testable V.pp_truth ( = )

(* ---- Value ---- *)

let value_tests =
  [
    case "eq3 null left is unknown" (fun () ->
        Alcotest.check truth "" V.Unknown (V.eq3 V.Null (v "a")));
    case "eq3 null right is unknown" (fun () ->
        Alcotest.check truth "" V.Unknown (V.eq3 (v "a") V.Null));
    case "eq3 equal strings" (fun () ->
        Alcotest.check truth "" V.True (V.eq3 (v "a") (v "a")));
    case "eq3 distinct strings" (fun () ->
        Alcotest.check truth "" V.False (V.eq3 (v "a") (v "b")));
    case "eq3 int vs float is numeric" (fun () ->
        Alcotest.check truth "" V.True (V.eq3 (vi 3) (V.float 3.0)));
    case "eq3 int vs string is false" (fun () ->
        Alcotest.check truth "" V.False (V.eq3 (vi 3) (v "3")));
    case "ne3 is negation of eq3" (fun () ->
        Alcotest.check truth "" V.False (V.ne3 (v "a") (v "a"));
        Alcotest.check truth "" V.Unknown (V.ne3 V.Null (v "a")));
    case "lt3 numeric" (fun () ->
        Alcotest.check truth "" V.True (V.lt3 (vi 1) (vi 2));
        Alcotest.check truth "" V.False (V.lt3 (vi 2) (vi 1)));
    case "lt3 cross-type is unknown" (fun () ->
        Alcotest.check truth "" V.Unknown (V.lt3 (vi 1) (v "a")));
    case "le3 ge3 gt3 on strings" (fun () ->
        Alcotest.check truth "" V.True (V.le3 (v "a") (v "b"));
        Alcotest.check truth "" V.True (V.gt3 (v "b") (v "a"));
        Alcotest.check truth "" V.True (V.ge3 (v "b") (v "b")));
    case "non_null_eq rejects null = null" (fun () ->
        Alcotest.(check bool) "" false (V.non_null_eq V.Null V.Null));
    case "non_null_eq accepts equal non-null" (fun () ->
        Alcotest.(check bool) "" true (V.non_null_eq (v "a") (v "a")));
    case "of_csv_string variants" (fun () ->
        Alcotest.(check bool) "" true (V.equal (V.of_csv_string "") V.Null);
        Alcotest.(check bool) "" true (V.equal (V.of_csv_string "null") V.Null);
        Alcotest.(check bool) "" true (V.equal (V.of_csv_string "42") (vi 42));
        Alcotest.(check bool) "" true
          (V.equal (V.of_csv_string "4.5") (V.float 4.5));
        Alcotest.(check bool) "" true
          (V.equal (V.of_csv_string "true") (V.bool true));
        Alcotest.(check bool) "" true
          (V.equal (V.of_csv_string "abc") (v "abc")));
    case "conforms with null" (fun () ->
        Alcotest.(check bool) "" true (V.conforms V.Null V.TInt);
        Alcotest.(check bool) "" false (V.conforms (v "x") V.TInt));
  ]

let all_truths = [ V.True; V.False; V.Unknown ]

let kleene_tests =
  [
    case "and3 truth table" (fun () ->
        List.iter
          (fun (a, b, expected) ->
            Alcotest.check truth "" expected (V.and3 a b))
          [
            (V.True, V.True, V.True); (V.True, V.False, V.False);
            (V.True, V.Unknown, V.Unknown); (V.False, V.Unknown, V.False);
            (V.Unknown, V.Unknown, V.Unknown); (V.False, V.False, V.False);
          ]);
    case "or3 truth table" (fun () ->
        List.iter
          (fun (a, b, expected) ->
            Alcotest.check truth "" expected (V.or3 a b))
          [
            (V.True, V.False, V.True); (V.Unknown, V.True, V.True);
            (V.False, V.Unknown, V.Unknown); (V.False, V.False, V.False);
            (V.Unknown, V.Unknown, V.Unknown);
          ]);
    case "and3/or3 commutative, de morgan" (fun () ->
        List.iter
          (fun a ->
            List.iter
              (fun b ->
                Alcotest.check truth "comm-and" (V.and3 a b) (V.and3 b a);
                Alcotest.check truth "comm-or" (V.or3 a b) (V.or3 b a);
                Alcotest.check truth "de-morgan"
                  (V.not3 (V.and3 a b))
                  (V.or3 (V.not3 a) (V.not3 b)))
              all_truths)
          all_truths);
  ]

let value_gen =
  QCheck2.Gen.(
    oneof
      [
        return V.Null;
        map V.int (int_range (-5) 5);
        (* Floats that collide numerically with the int range, so the
           mixed Int/Float comparisons actually get exercised. *)
        map V.float (oneofl [ -1.; 0.; 1.; 1.5; 2. ]);
        map V.string (oneofl [ "a"; "b"; "c" ]);
        map V.bool bool;
      ])

let value_props =
  [
    qtest "compare is reflexive" value_gen (fun a -> V.compare a a = 0);
    qtest "compare antisymmetric"
      QCheck2.Gen.(pair value_gen value_gen)
      (fun (a, b) -> V.compare a b = -V.compare b a);
    qtest "compare transitive through a pivot"
      QCheck2.Gen.(triple value_gen value_gen value_gen)
      (fun (a, b, c) ->
        (* sort by compare, then every adjacent pair must be <=. *)
        match List.sort V.compare [ a; b; c ] with
        | [ x; y; z ] -> V.compare x y <= 0 && V.compare y z <= 0
        | _ -> false);
    qtest "compare is zero exactly when equal"
      QCheck2.Gen.(pair value_gen value_gen)
      (fun (a, b) -> V.compare a b = 0 = V.equal a b);
    qtest "equal values hash equally"
      QCheck2.Gen.(pair value_gen value_gen)
      (fun (a, b) -> (not (V.equal a b)) || V.hash a = V.hash b);
    qtest "eq3 true implies non-null agreement"
      QCheck2.Gen.(pair value_gen value_gen)
      (fun (a, b) ->
        V.eq3 a b <> V.True || ((not (V.is_null a)) && not (V.is_null b)));
    case "Int/Float never compare equal across constructors" (fun () ->
        (* equal (Int 1) (Float 1.) is false, so compare must not return
           0 — it breaks Map/Set keying if it does. Numeric order still
           wins when the values differ. *)
        Alcotest.(check bool) "1 vs 1." true
          (V.compare (V.int 1) (V.float 1.) <> 0);
        Alcotest.(check bool) "antisym" true
          (V.compare (V.int 1) (V.float 1.)
          = -V.compare (V.float 1.) (V.int 1));
        Alcotest.(check bool) "1 < 1.5" true
          (V.compare (V.int 1) (V.float 1.5) < 0);
        Alcotest.(check bool) "2. > 1" true
          (V.compare (V.float 2.) (V.int 1) > 0));
  ]

(* ---- Schema / Tuple ---- *)

let schema_tests =
  [
    check_raises_any "duplicate attribute rejected" (fun () ->
        R.Schema.of_names [ "a"; "a" ]);
    case "index_of and mem" (fun () ->
        let s = R.Schema.of_names [ "a"; "b"; "c" ] in
        Alcotest.(check int) "" 1 (R.Schema.index_of s "b");
        Alcotest.(check bool) "" true (R.Schema.mem s "c");
        Alcotest.(check bool) "" false (R.Schema.mem s "z"));
    check_raises_any "index_of unknown raises" (fun () ->
        R.Schema.index_of (R.Schema.of_names [ "a" ]) "z");
    case "project keeps requested order" (fun () ->
        let s = R.Schema.of_names [ "a"; "b"; "c" ] in
        Alcotest.(check (list string))
          "" [ "c"; "a" ]
          (R.Schema.names (R.Schema.project s [ "c"; "a" ])));
    case "rename with clash rejected" (fun () ->
        let s = R.Schema.of_names [ "a"; "b" ] in
        Alcotest.(check bool) "" true
          (match R.Schema.rename s [ ("a", "b") ] with
          | _ -> false
          | exception R.Schema.Duplicate_attribute _ -> true));
    case "restrict_away and common" (fun () ->
        let s = R.Schema.of_names [ "a"; "b"; "c" ] in
        let t = R.Schema.of_names [ "b"; "c"; "d" ] in
        Alcotest.(check (list string))
          "" [ "a" ]
          (R.Schema.names (R.Schema.restrict_away s [ "b"; "c" ]));
        Alcotest.(check (list string)) "" [ "b"; "c" ] (R.Schema.common s t));
    case "typed schema rejects wrong type" (fun () ->
        let s = R.Schema.make [ R.Schema.attr ~ty:V.TInt "n" ] in
        Alcotest.(check bool) "" true
          (match R.Tuple.make s [ v "oops" ] with
          | _ -> false
          | exception Invalid_argument _ -> true));
  ]

let tuple_tests =
  [
    check_raises_any "arity mismatch raises" (fun () ->
        R.Tuple.make (R.Schema.of_names [ "a"; "b" ]) [ v "1" ]);
    case "get / set" (fun () ->
        let s = R.Schema.of_names [ "a"; "b" ] in
        let t = R.Tuple.make s [ v "1"; v "2" ] in
        let t' = R.Tuple.set s t "b" (v "9") in
        Alcotest.(check string) "" "9" (V.to_string (R.Tuple.get s t' "b"));
        Alcotest.(check string) "unchanged" "2"
          (V.to_string (R.Tuple.get s t "b")));
    case "project and concat" (fun () ->
        let s = R.Schema.of_names [ "a"; "b"; "c" ] in
        let t = R.Tuple.make s [ v "1"; v "2"; v "3" ] in
        let p = R.Tuple.project s t [ "c"; "a" ] in
        Alcotest.(check int) "" 2 (R.Tuple.arity p);
        Alcotest.(check int) "" 5 (R.Tuple.arity (R.Tuple.concat t p)));
    case "agree requires non-null equality" (fun () ->
        let s = R.Schema.of_names [ "a" ] in
        let t1 = R.Tuple.make s [ v "x" ] in
        let t2 = R.Tuple.make s [ v "x" ] in
        let tn = R.Tuple.make s [ V.Null ] in
        Alcotest.(check bool) "" true (R.Tuple.agree s t1 s t2 [ "a" ]);
        Alcotest.(check bool) "" false (R.Tuple.agree s tn s tn [ "a" ]));
    case "has_null" (fun () ->
        let s = R.Schema.of_names [ "a"; "b" ] in
        Alcotest.(check bool) "" true
          (R.Tuple.has_null (R.Tuple.make s [ v "1"; V.Null ]));
        Alcotest.(check bool) "" false
          (R.Tuple.has_null (R.Tuple.make s [ v "1"; v "2" ])));
    check_raises_any "plan on a missing attribute raises like index_of"
      (fun () -> R.Tuple.plan (R.Schema.of_names [ "a"; "b" ]) [ "a"; "z" ]);
    qtest "plan-based projection equals name-based projection"
      QCheck2.Gen.(
        let names = [ "a"; "b"; "c"; "d"; "e" ] in
        pair
          (list_size (0 -- 4) (oneofl names))
          (list_size (5 -- 5) small_nat))
      (fun (wanted, cells) ->
        let s = R.Schema.of_names [ "a"; "b"; "c"; "d"; "e" ] in
        let t = R.Tuple.make s (List.map R.Value.int cells) in
        let plan = R.Tuple.plan s wanted in
        R.Tuple.plan_arity plan = List.length wanted
        && R.Tuple.equal
             (R.Tuple.project_with plan t)
             (R.Tuple.project s t wanted));
    qtest "agree_with equals agree on shared attributes"
      QCheck2.Gen.(
        triple
          (list_size (1 -- 3) (oneofl [ "a"; "b"; "c" ]))
          (list_size (3 -- 3) (oneofl [ Some 0; Some 1; None ]))
          (list_size (3 -- 3) (oneofl [ Some 0; Some 1; None ])))
      (fun (attrs, cells1, cells2) ->
        let cell = function Some i -> R.Value.int i | None -> V.Null in
        let s = R.Schema.of_names [ "a"; "b"; "c" ] in
        let t1 = R.Tuple.make s (List.map cell cells1)
        and t2 = R.Tuple.make s (List.map cell cells2) in
        let p = R.Tuple.plan s attrs in
        R.Tuple.agree_with p p t1 t2 = R.Tuple.agree s t1 s t2 attrs);
  ]

(* ---- Relation ---- *)

let relation_tests =
  [
    case "exact duplicates collapse" (fun () ->
        let r = relation [ "a" ] [] [ [ "x" ]; [ "x" ]; [ "y" ] ] in
        Alcotest.(check int) "" 2 (R.Relation.cardinality r));
    check_raises_any "key violation on duplicate key" (fun () ->
        relation [ "a"; "b" ] [ [ "a" ] ] [ [ "x"; "1" ]; [ "x"; "2" ] ]);
    case "null in declared key rejected" (fun () ->
        Alcotest.(check bool) "" true
          (match
             R.Relation.create
               (R.Schema.of_names [ "a" ])
               ~keys:[ [ "a" ] ]
               [ [ V.Null ] ]
           with
          | _ -> false
          | exception R.Relation.Key_violation _ -> true));
    case "defaulted key reported but not enforced" (fun () ->
        let r =
          R.Relation.create (R.Schema.of_names [ "a" ]) [ [ V.Null ] ]
        in
        Alcotest.(check (list (list string))) "" [ [ "a" ] ] (R.Relation.keys r);
        Alcotest.(check (list (list string))) "" [] (R.Relation.declared_keys r));
    case "add preserves keys" (fun () ->
        let r = relation [ "a" ] [ [ "a" ] ] [ [ "x" ] ] in
        let r' =
          R.Relation.add r (R.Tuple.make (R.Relation.schema r) [ v "y" ])
        in
        Alcotest.(check int) "" 2 (R.Relation.cardinality r');
        Alcotest.(check bool) "" true
          (match
             R.Relation.add r' (R.Tuple.make (R.Relation.schema r) [ v "x" ])
           with
          | r'' -> R.Relation.cardinality r'' = 2 (* dedup, not violation *)
          | exception R.Relation.Key_violation _ -> false));
    case "equal ignores tuple order" (fun () ->
        let a = relation [ "a" ] [] [ [ "x" ]; [ "y" ] ] in
        let b = relation [ "a" ] [] [ [ "y" ]; [ "x" ] ] in
        Alcotest.(check bool) "" true (R.Relation.equal a b));
    case "key_of projects primary key" (fun () ->
        let r = relation [ "a"; "b" ] [ [ "b" ] ] [ [ "x"; "1" ] ] in
        let t = List.hd (R.Relation.tuples r) in
        Alcotest.(check int) "" 1 (R.Tuple.arity (R.Relation.key_of r t)));
    case "with_keys revalidates" (fun () ->
        let r = relation [ "a"; "b" ] [] [ [ "x"; "1" ]; [ "x"; "2" ] ] in
        Alcotest.(check bool) "" true
          (match R.Relation.with_keys r [ [ "a" ] ] with
          | _ -> false
          | exception R.Relation.Key_violation _ -> true));
  ]

(* ---- Algebra ---- *)

let abc = relation [ "a"; "b" ] [] [ [ "1"; "x" ]; [ "2"; "y" ]; [ "3"; "x" ] ]

let algebra_tests =
  [
    case "select by predicate" (fun () ->
        let out = R.Algebra.select (R.Predicate.eq "b" (v "x")) abc in
        Alcotest.(check int) "" 2 (R.Relation.cardinality out));
    case "select never keeps unknown (null)" (fun () ->
        let r =
          R.Relation.create
            (R.Schema.of_names [ "a" ])
            [ [ V.Null ]; [ v "x" ] ]
        in
        let out = R.Algebra.select (R.Predicate.eq "a" (v "x")) r in
        Alcotest.(check int) "" 1 (R.Relation.cardinality out);
        let out_ne =
          R.Algebra.select
            (R.Predicate.Not (R.Predicate.eq "a" (v "x")))
            r
        in
        Alcotest.(check int) "negation of unknown still unknown" 0
          (R.Relation.cardinality out_ne));
    case "project dedups" (fun () ->
        let out = R.Algebra.project [ "b" ] abc in
        Alcotest.(check int) "" 2 (R.Relation.cardinality out));
    case "rename carries keys" (fun () ->
        let r = relation [ "a"; "b" ] [ [ "a" ] ] [ [ "1"; "x" ] ] in
        let out = R.Algebra.rename [ ("a", "z") ] r in
        Alcotest.(check (list (list string))) "" [ [ "z" ] ]
          (R.Relation.keys out));
    case "prefix renames all" (fun () ->
        let out = R.Algebra.prefix "r_" abc in
        Alcotest.(check (list string)) "" [ "r_a"; "r_b" ]
          (R.Schema.names (R.Relation.schema out)));
    check_raises_any "product with clash raises" (fun () ->
        R.Algebra.product abc abc);
    case "product cardinality" (fun () ->
        let other = relation [ "c" ] [] [ [ "1" ]; [ "2" ] ] in
        Alcotest.(check int) "" 6
          (R.Relation.cardinality (R.Algebra.product abc other)));
    case "equi_join basic" (fun () ->
        let left = relation [ "a"; "b" ] [] [ [ "1"; "x" ]; [ "2"; "y" ] ] in
        let right = relation [ "c"; "d" ] [] [ [ "x"; "p" ]; [ "x"; "q" ] ] in
        let out = R.Algebra.equi_join ~on:[ ("b", "c") ] left right in
        Alcotest.(check int) "" 2 (R.Relation.cardinality out));
    case "equi_join null keys never join" (fun () ->
        let left =
          R.Relation.create (R.Schema.of_names [ "b" ]) [ [ V.Null ] ]
        in
        let right =
          R.Relation.create (R.Schema.of_names [ "c" ]) [ [ V.Null ] ]
        in
        Alcotest.(check int) "" 0
          (R.Relation.cardinality
             (R.Algebra.equi_join ~on:[ ("b", "c") ] left right)));
    case "outer joins pad with nulls" (fun () ->
        let left = relation [ "a" ] [] [ [ "x" ]; [ "y" ] ] in
        let right = relation [ "b" ] [] [ [ "x" ]; [ "z" ] ] in
        let lo = R.Algebra.left_outer_join ~on:[ ("a", "b") ] left right in
        let ro = R.Algebra.right_outer_join ~on:[ ("a", "b") ] left right in
        let fo = R.Algebra.full_outer_join ~on:[ ("a", "b") ] left right in
        Alcotest.(check int) "left" 2 (R.Relation.cardinality lo);
        Alcotest.(check int) "right" 2 (R.Relation.cardinality ro);
        Alcotest.(check int) "full" 3 (R.Relation.cardinality fo);
        let nulls rel =
          List.length
            (List.filter R.Tuple.has_null (R.Relation.tuples rel))
        in
        Alcotest.(check int) "full outer null-padded rows" 2 (nulls fo));
    case "natural_join merges common attrs" (fun () ->
        let left = relation [ "a"; "b" ] [] [ [ "1"; "x" ] ] in
        let right = relation [ "b"; "c" ] [] [ [ "x"; "9" ] ] in
        let out = R.Algebra.natural_join left right in
        Alcotest.(check (list string)) "" [ "a"; "b"; "c" ]
          (R.Schema.names (R.Relation.schema out));
        Alcotest.(check int) "" 1 (R.Relation.cardinality out));
    case "natural_join without common attrs is product" (fun () ->
        let left = relation [ "a" ] [] [ [ "1" ]; [ "2" ] ] in
        let right = relation [ "b" ] [] [ [ "x" ] ] in
        Alcotest.(check int) "" 2
          (R.Relation.cardinality (R.Algebra.natural_join left right)));
    case "union inter diff" (fun () ->
        let x = relation [ "a" ] [] [ [ "1" ]; [ "2" ] ] in
        let y = relation [ "a" ] [] [ [ "2" ]; [ "3" ] ] in
        Alcotest.(check int) "union" 3
          (R.Relation.cardinality (R.Algebra.union x y));
        Alcotest.(check int) "inter" 1
          (R.Relation.cardinality (R.Algebra.inter x y));
        Alcotest.(check int) "diff" 1
          (R.Relation.cardinality (R.Algebra.diff x y)));
    check_raises_any "union incompatible raises" (fun () ->
        R.Algebra.union abc (relation [ "z" ] [] []));
    case "sort_by orders" (fun () ->
        let out = R.Algebra.sort_by [ "b"; "a" ] abc in
        let firsts =
          List.map
            (fun t -> V.to_string (R.Tuple.nth t 0))
            (R.Relation.tuples out)
        in
        Alcotest.(check (list string)) "" [ "1"; "3"; "2" ] firsts);
    case "theta_join equals filtered product" (fun () ->
        let left = relation [ "a" ] [] [ [ "1" ]; [ "2" ] ] in
        let right = relation [ "b" ] [] [ [ "1" ]; [ "3" ] ] in
        let theta =
          R.Algebra.theta_join
            (R.Predicate.eq_attr "a" "b")
            left right
        in
        let equi = R.Algebra.equi_join ~on:[ ("a", "b") ] left right in
        Alcotest.(check bool) "" true (R.Relation.equal theta equi));
  ]

(* Random small relations over fixed schemas for algebraic laws. *)
let small_cell_gen =
  QCheck2.Gen.(
    oneof
      [ return V.Null; map V.int (int_range 0 3);
        map V.string (oneofl [ "x"; "y" ]) ])

let rel_gen names =
  QCheck2.Gen.(
    let width = List.length names in
    map
      (fun rows ->
        R.Relation.create (R.Schema.of_names names) rows)
      (list_size (0 -- 6) (list_repeat width small_cell_gen)))

let ab_gen = rel_gen [ "a"; "b" ]
let cd_gen = rel_gen [ "c"; "d" ]

(* Cell values that stress CSV quoting: separators, quotes, bare CR/LF,
   and NULL. Strings are chosen to survive [of_csv_string]'s cell
   inference (no numerals, no "null"/"true", no leading/trailing
   whitespace — it trims) so round-trips are exact. *)
let awkward_value_gen =
  QCheck2.Gen.oneofl
    [
      V.Null;
      v "plain";
      v "with,comma";
      v "with\"quote";
      v "line1\nline2";
      v "cr\rmiddle";
      v "\"quoted\"";
      v ",";
    ]

let algebra_law_tests =
  [
    qtest ~count:60 "selection is idempotent" ab_gen (fun r ->
        let p = R.Predicate.eq "a" (vi 1) in
        R.Relation.equal
          (R.Algebra.select p r)
          (R.Algebra.select p (R.Algebra.select p r)));
    qtest ~count:60 "selection commutes" ab_gen (fun r ->
        let p = R.Predicate.eq "a" (vi 1) in
        let q = R.Predicate.eq "b" (v "x") in
        R.Relation.equal
          (R.Algebra.select p (R.Algebra.select q r))
          (R.Algebra.select q (R.Algebra.select p r)));
    qtest ~count:60 "selection pushes through join"
      QCheck2.Gen.(pair ab_gen cd_gen)
      (fun (left, right) ->
        let p = R.Predicate.eq "a" (vi 1) in
        R.Relation.equal
          (R.Algebra.select p (R.Algebra.equi_join ~on:[ ("b", "c") ] left right))
          (R.Algebra.equi_join ~on:[ ("b", "c") ] (R.Algebra.select p left)
             right));
    qtest ~count:60 "join bounded by product"
      QCheck2.Gen.(pair ab_gen cd_gen)
      (fun (left, right) ->
        R.Relation.cardinality
          (R.Algebra.equi_join ~on:[ ("b", "c") ] left right)
        <= R.Relation.cardinality left * R.Relation.cardinality right);
    qtest ~count:60 "full outer join covers both sides"
      QCheck2.Gen.(pair ab_gen cd_gen)
      (fun (left, right) ->
        let fo = R.Algebra.full_outer_join ~on:[ ("b", "c") ] left right in
        let lo = R.Algebra.left_outer_join ~on:[ ("b", "c") ] left right in
        let ro = R.Algebra.right_outer_join ~on:[ ("b", "c") ] left right in
        R.Relation.cardinality fo >= R.Relation.cardinality left
        && R.Relation.cardinality fo >= R.Relation.cardinality right
        && R.Relation.cardinality lo >= R.Relation.cardinality left
        && R.Relation.cardinality ro >= R.Relation.cardinality right);
    qtest ~count:60 "union commutative, inter bounded"
      QCheck2.Gen.(pair ab_gen ab_gen)
      (fun (x, y) ->
        R.Relation.equal (R.Algebra.union x y) (R.Algebra.union y x)
        && R.Relation.cardinality (R.Algebra.inter x y)
           <= min (R.Relation.cardinality x) (R.Relation.cardinality y));
    qtest ~count:60 "diff then union restores a superset"
      QCheck2.Gen.(pair ab_gen ab_gen)
      (fun (x, y) ->
        (* (x − y) ∪ (x ∩ y) = x *)
        R.Relation.equal
          (R.Algebra.union (R.Algebra.diff x y) (R.Algebra.inter x y))
          x);
    qtest ~count:60 "project after union = union after project"
      QCheck2.Gen.(pair ab_gen ab_gen)
      (fun (x, y) ->
        R.Relation.equal
          (R.Algebra.project [ "a" ] (R.Algebra.union x y))
          (R.Algebra.union (R.Algebra.project [ "a" ] x)
             (R.Algebra.project [ "a" ] y)));
    qtest ~count:60 "sort preserves content" ab_gen (fun r ->
        R.Relation.equal r (R.Algebra.sort_by [ "b"; "a" ] r));
    qtest ~count:60 "csv round-trip on random relations" ab_gen (fun r ->
        R.Relation.equal r
          (R.Csv_io.relation_of_string (R.Csv_io.to_string r)));
    qtest ~count:40 "csv save/load round-trip with awkward values"
      QCheck2.Gen.(
        list_size (0 -- 6)
          (pair awkward_value_gen awkward_value_gen))
      (fun rows ->
        let r =
          R.Relation.create
            (R.Schema.of_names [ "a"; "b" ])
            (List.map (fun (x, y) -> [ x; y ]) rows)
        in
        let path = Filename.temp_file "relational_qtest" ".csv" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            R.Csv_io.save r path;
            R.Relation.equal r (R.Csv_io.load path)));
  ]

(* ---- Key tools ---- *)

let key_tools_tests =
  [
    case "is_superkey / candidate / minimal" (fun () ->
        let r =
          relation [ "a"; "b"; "c" ] []
            [ [ "1"; "x"; "p" ]; [ "1"; "y"; "p" ]; [ "2"; "x"; "q" ] ]
        in
        Alcotest.(check bool) "ab superkey" true
          (R.Key_tools.is_superkey r [ "a"; "b" ]);
        Alcotest.(check bool) "a not" false (R.Key_tools.is_superkey r [ "a" ]);
        Alcotest.(check bool) "abc superkey but not candidate" false
          (R.Key_tools.is_candidate_key r [ "a"; "b"; "c" ]);
        Alcotest.(check bool) "ab candidate" true
          (R.Key_tools.is_candidate_key r [ "a"; "b" ]);
        let keys = R.Key_tools.minimal_keys r in
        Alcotest.(check bool) "ab among minimal" true
          (List.mem [ "a"; "b" ] keys || List.mem [ "b"; "a" ] keys));
    case "null key attribute disqualifies" (fun () ->
        let r =
          R.Relation.create
            (R.Schema.of_names [ "a" ])
            [ [ V.Null ]; [ v "x" ] ]
        in
        Alcotest.(check bool) "" false (R.Key_tools.is_superkey r [ "a" ]));
    case "violating pair found" (fun () ->
        let r = relation [ "a"; "b" ] [] [ [ "1"; "x" ]; [ "1"; "y" ] ] in
        Alcotest.(check bool) "" true
          (Option.is_some (R.Key_tools.violating_pair r [ "a" ])));
  ]

(* ---- CSV ---- *)

let csv_tests =
  [
    case "round-trip with quoting" (fun () ->
        let r =
          R.Relation.create
            (R.Schema.of_names [ "a"; "b" ])
            [
              [ v "plain"; v "with,comma" ];
              [ v "with\"quote"; v "with\nnewline" ];
              [ V.Null; vi 42 ];
            ]
        in
        let round =
          R.Csv_io.relation_of_string (R.Csv_io.to_string r)
        in
        Alcotest.(check bool) "" true (R.Relation.equal r round));
    case "keys applied on load" (fun () ->
        let r =
          R.Csv_io.relation_of_string ~keys:[ [ "a" ] ] "a,b\n1,x\n2,y\n"
        in
        Alcotest.(check (list (list string))) "" [ [ "a" ] ]
          (R.Relation.keys r));
    check_raises_any "ragged row rejected" (fun () ->
        R.Csv_io.relation_of_string "a,b\n1\n");
    check_raises_any "unterminated quote rejected" (fun () ->
        R.Csv_io.relation_of_string "a\n\"oops\n");
    check_raises_any "empty input rejected" (fun () ->
        R.Csv_io.relation_of_string "");
    case "crlf accepted" (fun () ->
        let r = R.Csv_io.relation_of_string "a,b\r\n1,2\r\n" in
        Alcotest.(check int) "" 1 (R.Relation.cardinality r));
    case "lone CR is field content, not a separator" (fun () ->
        (* Regression: a CR not followed by LF used to be dropped. *)
        let r = R.Csv_io.relation_of_string "a\nx\rz\n" in
        let expected =
          R.Relation.create (R.Schema.of_names [ "a" ]) [ [ v "x\rz" ] ]
        in
        Alcotest.(check bool) "" true (R.Relation.equal r expected));
    case "final quoted empty field at EOF kept" (fun () ->
        (* Regression: a last record consisting of a single [""] with no
           trailing newline used to be dropped entirely. *)
        let r = R.Csv_io.relation_of_string "a\nx\n\"\"" in
        Alcotest.(check int) "" 2 (R.Relation.cardinality r);
        let expected =
          R.Relation.create
            (R.Schema.of_names [ "a" ])
            [ [ v "x" ]; [ V.Null ] ]
        in
        Alcotest.(check bool) "" true (R.Relation.equal r expected));
    case "save and load through a file" (fun () ->
        let path = Filename.temp_file "relational_test" ".csv" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            (* values that survive of_csv_string's type inference *)
            let r =
              relation [ "a"; "b" ] [ [ "a" ] ]
                [ [ "one"; "x" ]; [ "two"; "y" ] ]
            in
            R.Csv_io.save r path;
            let back = R.Csv_io.load ~keys:[ [ "a" ] ] path in
            Alcotest.(check bool) "" true (R.Relation.equal r back);
            Alcotest.(check (list (list string))) "" [ [ "a" ] ]
              (R.Relation.keys back)));
  ]

let pretty_tests =
  [
    case "render contains header and rows" (fun () ->
        let out = R.Pretty.render ~title:"t" abc in
        let contains needle =
          let nl = String.length needle and ol = String.length out in
          let rec scan i =
            i + nl <= ol && (String.sub out i nl = needle || scan (i + 1))
          in
          scan 0
        in
        List.iter
          (fun needle ->
            Alcotest.(check bool) needle true (contains needle))
          [ "t"; "a"; "b"; "1"; "x"; "y"; "-" ]);
    case "render aligns columns" (fun () ->
        let out = R.Pretty.render abc in
        let lines = String.split_on_char '\n' out in
        (match lines with
        | header :: rule :: _ ->
            Alcotest.(check int) "rule same width" (String.length header)
              (String.length rule)
        | _ -> Alcotest.fail "too short"));
  ]

let () =
  Alcotest.run "relational"
    [
      ("value", value_tests);
      ("kleene", kleene_tests);
      ("value-props", value_props);
      ("schema", schema_tests);
      ("tuple", tuple_tests);
      ("relation", relation_tests);
      ("algebra", algebra_tests);
      ("algebra-laws", algebra_law_tests);
      ("key-tools", key_tools_tests);
      ("csv", csv_tests);
      ("pretty", pretty_tests);
    ]
