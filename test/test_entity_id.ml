(* Tests for the paper's core contribution: extended keys, the
   three-valued decision function, matching/negative tables with their
   uniqueness and consistency constraints, the Identify pipeline against
   the paper's own tables (2, 3, 4, 5, 6, 7), the integrated table, the
   monotonic engine (Figure 3), the algebraic construction (Section 4.2),
   and the Figure 2 soundness scenario. *)

module R = Relational
module V = R.Value
module E = Entity_id
module PD = Workload.Paper_data
open Helpers

let case name f = Alcotest.test_case name `Quick f

let get schema t a = V.to_string (R.Tuple.get schema t a)

(* ---- Match_result ---- *)

let match_result_tests =
  [
    case "refines lattice" (fun () ->
        let open E.Match_result in
        Alcotest.(check bool) "" true (refines Undetermined Match);
        Alcotest.(check bool) "" true (refines Undetermined No_match);
        Alcotest.(check bool) "" true (refines Match Match);
        Alcotest.(check bool) "" false (refines Match No_match);
        Alcotest.(check bool) "" false (refines No_match Undetermined));
    case "of_truth" (fun () ->
        let open E.Match_result in
        Alcotest.(check bool) "" true (equal (of_truth V.True) Match);
        Alcotest.(check bool) "" true (equal (of_truth V.False) No_match);
        Alcotest.(check bool) "" true
          (equal (of_truth V.Unknown) Undetermined));
  ]

(* ---- Extended_key ---- *)

let extended_key_tests =
  [
    check_raises_any "empty key rejected" (fun () -> E.Extended_key.make []);
    check_raises_any "duplicate attrs rejected" (fun () ->
        E.Extended_key.make [ "a"; "a" ]);
    case "equivalence rule is a valid identity rule" (fun () ->
        let rule =
          E.Extended_key.equivalence_rule (E.Extended_key.make [ "a"; "b" ])
        in
        Alcotest.(check int) "" 2 (List.length rule.Rules.Identity.atoms));
    case "candidate attributes include derivable" (fun () ->
        let cands =
          E.Extended_key.candidate_attributes PD.table5_r PD.table5_s
            PD.ilfds_i1_i8
        in
        Alcotest.(check bool) "name" true (List.mem "name" cands);
        Alcotest.(check bool) "cuisine (derived in S)" true
          (List.mem "cuisine" cands);
        Alcotest.(check bool) "speciality (derived in R)" true
          (List.mem "speciality" cands);
        Alcotest.(check bool) "street is R-only" false
          (List.mem "street" cands));
    case "covers_keys" (fun () ->
        let k = E.Extended_key.make [ "name"; "cuisine"; "speciality" ] in
        Alcotest.(check bool) "" true
          (E.Extended_key.covers_keys k ~r_key:[ "name"; "cuisine" ]
             ~s_key:[ "name"; "speciality" ]);
        Alcotest.(check bool) "" false
          (E.Extended_key.covers_keys k ~r_key:[ "street" ] ~s_key:[]));
    case "is_minimal_for instance" (fun () ->
        let world =
          relation [ "a"; "b"; "c" ] []
            [ [ "1"; "x"; "p" ]; [ "1"; "y"; "q" ]; [ "2"; "x"; "q" ] ]
        in
        Alcotest.(check bool) "ab minimal" true
          (E.Extended_key.is_minimal_for (E.Extended_key.make [ "a"; "b" ])
             world);
        Alcotest.(check bool) "abc not minimal" false
          (E.Extended_key.is_minimal_for
             (E.Extended_key.make [ "a"; "b"; "c" ])
             world));
  ]

(* ---- Decision ---- *)

let decision_tests =
  let schema = R.Schema.of_names [ "name"; "cuisine"; "speciality" ] in
  let tup vals = R.Tuple.make schema (List.map v vals) in
  let ek = E.Extended_key.make [ "name"; "cuisine" ] in
  let identity = [ E.Extended_key.equivalence_rule ek ] in
  let distinctness =
    Ilfd.Props.distinctness_rules_of_ilfd
      (Ilfd.parse "speciality = Mughalai -> cuisine = Indian")
  in
  [
    case "match via identity rule" (fun () ->
        let verdict =
          E.Decision.decide ~identity ~distinctness schema
            (tup [ "A"; "Chinese"; "Hunan" ])
            schema
            (tup [ "A"; "Chinese"; "Hunan" ])
        in
        Alcotest.(check bool) "" true
          (E.Match_result.equal verdict.result E.Match_result.Match);
        Alcotest.(check bool) "witness rule" true
          (Option.is_some verdict.identity));
    case "no-match via distinctness rule" (fun () ->
        let verdict =
          E.Decision.decide ~identity ~distinctness schema
            (tup [ "A"; "Indian"; "Mughalai" ])
            schema
            (tup [ "B"; "Greek"; "Gyros" ])
        in
        Alcotest.(check bool) "" true
          (E.Match_result.equal verdict.result E.Match_result.No_match));
    case "distinctness applies in swapped orientation" (fun () ->
        let verdict =
          E.Decision.decide ~identity ~distinctness schema
            (tup [ "B"; "Greek"; "Gyros" ])
            schema
            (tup [ "A"; "Indian"; "Mughalai" ])
        in
        Alcotest.(check bool) "" true
          (E.Match_result.equal verdict.result E.Match_result.No_match));
    case "undetermined without applicable rule" (fun () ->
        let verdict =
          E.Decision.decide ~identity ~distinctness schema
            (tup [ "A"; "Chinese"; "Hunan" ])
            schema
            (tup [ "B"; "Greek"; "Gyros" ])
        in
        Alcotest.(check bool) "" true
          (E.Match_result.equal verdict.result E.Match_result.Undetermined));
    case "inconsistent rules raise" (fun () ->
        (* An identity rule and a distinctness rule both firing. *)
        let bad_distinct =
          Rules.Distinctness.make ~name:"bad"
            [
              Rules.Atom.make
                (Rules.Atom.attr Rules.Atom.Left "name")
                R.Predicate.Eq
                (Rules.Atom.attr Rules.Atom.Right "name");
            ]
        in
        Alcotest.(check bool) "" true
          (match
             E.Decision.decide ~identity ~distinctness:[ bad_distinct ]
               schema
               (tup [ "A"; "Chinese"; "Hunan" ])
               schema
               (tup [ "A"; "Chinese"; "Hunan" ])
           with
          | _ -> false
          | exception E.Decision.Inconsistent _ -> true));
    case "partition is a partition" (fun () ->
        let r =
          relation [ "name"; "cuisine"; "speciality" ] []
            [ [ "A"; "Chinese"; "Hunan" ]; [ "B"; "Indian"; "Mughalai" ] ]
        in
        let s =
          relation [ "name"; "cuisine"; "speciality" ] []
            [ [ "A"; "Chinese"; "Hunan" ]; [ "C"; "Greek"; "Gyros" ] ]
        in
        let m, d, u = E.Decision.partition ~identity ~distinctness r s in
        Alcotest.(check int) "total" 4
          (List.length m + List.length d + List.length u);
        Alcotest.(check int) "matched" 1 (List.length m);
        (* B(Mughalai) is provably distinct from both Chinese A and
           Greek C. *)
        Alcotest.(check int) "distinct" 2 (List.length d));
    case "blocked partition raises Inconsistent like naive" (fun () ->
        let bad_distinct =
          Rules.Distinctness.make ~name:"bad"
            [
              Rules.Atom.make
                (Rules.Atom.attr Rules.Atom.Left "name")
                R.Predicate.Eq
                (Rules.Atom.attr Rules.Atom.Right "name");
            ]
        in
        let rel =
          relation [ "name"; "cuisine"; "speciality" ] []
            [ [ "A"; "Chinese"; "Hunan" ] ]
        in
        let attempt f =
          match f ~identity ~distinctness:[ bad_distinct ] rel rel with
          | _ -> None
          | exception
              E.Decision.Inconsistent { identity = i; distinctness = d } ->
              Some (i.name, d.name)
        in
        let blocked =
          attempt (fun ~identity ~distinctness r s ->
              E.Decision.partition ~identity ~distinctness r s)
        in
        Alcotest.(check bool) "raises" true (Option.is_some blocked);
        Alcotest.(check bool) "same witnesses as naive" true
          (blocked = attempt E.Decision.partition_naive));
    case "no-equality rules fall back to nested loop" (fun () ->
        (* A pure-≠ distinctness rule has no blocking key; the engine
           must still agree with the naive partition on it. *)
        let neq =
          Rules.Distinctness.make ~name:"different-cuisine"
            [
              Rules.Atom.make
                (Rules.Atom.attr Rules.Atom.Left "cuisine")
                R.Predicate.Ne
                (Rules.Atom.attr Rules.Atom.Right "cuisine");
            ]
        in
        Alcotest.(check bool) "blocking key is None" true
          (Rules.Distinctness.blocking_key neq = None);
        let r =
          relation [ "name"; "cuisine"; "speciality" ] []
            [ [ "A"; "Chinese"; "Hunan" ]; [ "B"; "Indian"; "Mughalai" ] ]
        in
        let s =
          relation [ "name"; "cuisine"; "speciality" ] []
            [ [ "A"; "Chinese"; "Hunan" ]; [ "C"; "Greek"; "Gyros" ] ]
        in
        Alcotest.(check bool) "" true
          (E.Decision.partition ~identity ~distinctness:[ neq ] r s
          = E.Decision.partition_naive ~identity ~distinctness:[ neq ] r s));
    qtest ~count:20 "blocked partition equals naive on random instances"
      (restaurant_gen ())
      (fun inst ->
        (* Randomized extended relations (including NULL keys and
           homonyms) partitioned under both the extended-key identity
           rule and ILFD-induced distinctness rules: all three lists
           must agree element-for-element, in order. *)
        let o = E.Identify.run ~r:inst.r ~s:inst.s ~key:inst.key inst.ilfds in
        let identity = [ E.Extended_key.equivalence_rule inst.key ] in
        let distinctness =
          E.Negative.distinctness_rules_of_ilfds inst.ilfds
        in
        E.Decision.partition ~identity ~distinctness o.r_extended o.s_extended
        = E.Decision.partition_naive ~identity ~distinctness o.r_extended
            o.s_extended);
    qtest ~count:15 "parallel partition equals serial for any jobs"
      (restaurant_gen ())
      (fun inst ->
        (* The executor's contract: identical lists, identical order, for
           every jobs value — including a count that does not divide the
           row count. *)
        let o = E.Identify.run ~r:inst.r ~s:inst.s ~key:inst.key inst.ilfds in
        let identity = [ E.Extended_key.equivalence_rule inst.key ] in
        let distinctness =
          E.Negative.distinctness_rules_of_ilfds inst.ilfds
        in
        let run jobs =
          E.Decision.partition ~jobs ~identity ~distinctness o.r_extended
            o.s_extended
        in
        let reference = run 1 in
        List.for_all (fun jobs -> run jobs = reference) [ 2; 4; 7 ]);
    case "parallel Inconsistent raises from the row-major-first pair"
      (fun () ->
        (* Two conflicting pairs witnessed by different rules: (r0, s0)
           agrees on name only, (r1, s1) on street only. The serial scan
           hits (r0, s0) first, so every jobs value must report the
           name rules — even though with jobs >= 2 another domain owns
           that chunk. *)
        let eq_rule make name attr =
          make ~name
            [
              Rules.Atom.make
                (Rules.Atom.attr Rules.Atom.Left attr)
                R.Predicate.Eq
                (Rules.Atom.attr Rules.Atom.Right attr);
            ]
        in
        let identity =
          [
            eq_rule Rules.Identity.make "i-street" "street";
            eq_rule Rules.Identity.make "i-name" "name";
          ]
        and distinctness =
          [
            eq_rule Rules.Distinctness.make "d-street" "street";
            eq_rule Rules.Distinctness.make "d-name" "name";
          ]
        in
        let r =
          relation [ "name"; "street" ] []
            [ [ "A"; "S1" ]; [ "B"; "S2" ] ]
        and s =
          relation [ "name"; "street" ] []
            [ [ "A"; "X" ]; [ "C"; "S2" ] ]
        in
        let witness jobs =
          match
            E.Decision.partition ~jobs ~identity ~distinctness r s
          with
          | _ -> None
          | exception
              E.Decision.Inconsistent { identity = i; distinctness = d } ->
              Some (i.name, d.name)
        in
        Alcotest.(check (option (pair string string)))
          "serial witness"
          (Some ("i-name", "d-name"))
          (witness 1);
        List.iter
          (fun jobs ->
            Alcotest.(check (option (pair string string)))
              (Printf.sprintf "jobs=%d witness" jobs)
              (witness 1) (witness jobs))
          [ 2; 4; 7 ]);
    case "desynchronised decide raises Blocking_desync (serial arm)"
      (fun () ->
        (* The blocking index says an identity and a distinctness rule
           both fire on the only pair, but the injected decision function
           disagrees and returns Undetermined instead of raising
           Inconsistent — the serial merge must surface the offending
           pair as a Blocking_desync witness rather than die on an
           assertion. *)
        let eq_rule make name attr =
          make ~name
            [
              Rules.Atom.make
                (Rules.Atom.attr Rules.Atom.Left attr)
                R.Predicate.Eq
                (Rules.Atom.attr Rules.Atom.Right attr);
            ]
        in
        let identity = [ eq_rule Rules.Identity.make "i-name" "name" ]
        and distinctness =
          [ eq_rule Rules.Distinctness.make "d-name" "name" ]
        in
        let rel = relation [ "name"; "street" ] [] [ [ "A"; "S1" ] ] in
        let quiet _ _ _ _ =
          {
            E.Decision.result = E.Match_result.Undetermined;
            identity = None;
            distinctness = None;
          }
        in
        let witness = List.hd (R.Relation.tuples rel) in
        match
          E.Decision.partition ~decide:quiet ~identity ~distinctness rel
            rel
        with
        | _ -> Alcotest.fail "Blocking_desync expected"
        | exception E.Decision.Blocking_desync { r_tuple; s_tuple } ->
            Alcotest.(check bool) "r witness" true
              (R.Tuple.equal r_tuple witness);
            Alcotest.(check bool) "s witness" true
              (R.Tuple.equal s_tuple witness));
    case "desynchronised decide raises Blocking_desync (parallel arm)"
      (fun () ->
        (* Same desynchronisation under jobs > 1: the min_conflict
           pre-scan owns the both-fired arm there, and must report the
           row-major-minimal conflicting pair — (r0, s0) on name — for
           every jobs value, with the same witness the serial arm
           reports. *)
        let eq_rule make name attr =
          make ~name
            [
              Rules.Atom.make
                (Rules.Atom.attr Rules.Atom.Left attr)
                R.Predicate.Eq
                (Rules.Atom.attr Rules.Atom.Right attr);
            ]
        in
        let identity =
          [
            eq_rule Rules.Identity.make "i-street" "street";
            eq_rule Rules.Identity.make "i-name" "name";
          ]
        and distinctness =
          [
            eq_rule Rules.Distinctness.make "d-street" "street";
            eq_rule Rules.Distinctness.make "d-name" "name";
          ]
        in
        let r =
          relation [ "name"; "street" ] []
            [ [ "A"; "S1" ]; [ "B"; "S2" ] ]
        and s =
          relation [ "name"; "street" ] []
            [ [ "A"; "X" ]; [ "C"; "S2" ] ]
        in
        let quiet _ _ _ _ =
          {
            E.Decision.result = E.Match_result.Undetermined;
            identity = None;
            distinctness = None;
          }
        in
        let witness jobs =
          match
            E.Decision.partition ~jobs ~decide:quiet ~identity
              ~distinctness r s
          with
          | _ -> None
          | exception E.Decision.Blocking_desync { r_tuple; s_tuple } ->
              Some
                ( R.Tuple.equal r_tuple (List.nth (R.Relation.tuples r) 0),
                  R.Tuple.equal s_tuple (List.nth (R.Relation.tuples s) 0)
                )
        in
        List.iter
          (fun jobs ->
            Alcotest.(check (option (pair bool bool)))
              (Printf.sprintf "jobs=%d row-major-first witness" jobs)
              (Some (true, true))
              (witness jobs))
          [ 1; 2; 4; 7 ]);
  ]

(* ---- Matching_table ---- *)

let ktup names vals =
  R.Tuple.make (R.Schema.of_names names) (List.map v vals)

let entry r s =
  {
    E.Matching_table.r_key = ktup [ "rk" ] [ r ];
    s_key = ktup [ "sk" ] [ s ];
  }

let matching_table_tests =
  [
    case "duplicates collapse" (fun () ->
        let mt =
          E.Matching_table.make ~r_key_attrs:[ "rk" ] ~s_key_attrs:[ "sk" ]
            [ entry "1" "a"; entry "1" "a"; entry "2" "b" ]
        in
        Alcotest.(check int) "" 2 (E.Matching_table.cardinality mt));
    case "add is idempotent" (fun () ->
        let mt =
          E.Matching_table.make ~r_key_attrs:[ "rk" ] ~s_key_attrs:[ "sk" ] []
        in
        let mt = E.Matching_table.add mt (entry "1" "a") in
        let mt = E.Matching_table.add mt (entry "1" "a") in
        Alcotest.(check int) "" 1 (E.Matching_table.cardinality mt));
    case "uniqueness violations on both sides" (fun () ->
        let mt =
          E.Matching_table.make ~r_key_attrs:[ "rk" ] ~s_key_attrs:[ "sk" ]
            [ entry "1" "a"; entry "1" "b"; entry "2" "b" ]
        in
        let vs = E.Matching_table.uniqueness_violations mt in
        Alcotest.(check int) "one per side" 2 (List.length vs);
        Alcotest.(check bool) "" false (E.Matching_table.satisfies_uniqueness mt));
    case "consistency constraint" (fun () ->
        let mt =
          E.Matching_table.make ~r_key_attrs:[ "rk" ] ~s_key_attrs:[ "sk" ]
            [ entry "1" "a" ]
        in
        let nmt_ok =
          E.Matching_table.make ~r_key_attrs:[ "rk" ] ~s_key_attrs:[ "sk" ]
            [ entry "1" "b" ]
        in
        let nmt_bad =
          E.Matching_table.make ~r_key_attrs:[ "rk" ] ~s_key_attrs:[ "sk" ]
            [ entry "1" "a" ]
        in
        Alcotest.(check bool) "" true (E.Matching_table.consistent mt nmt_ok);
        Alcotest.(check bool) "" false (E.Matching_table.consistent mt nmt_bad));
    case "to_relation prefixes and sorts" (fun () ->
        let mt =
          E.Matching_table.make ~r_key_attrs:[ "rk" ] ~s_key_attrs:[ "sk" ]
            [ entry "2" "b"; entry "1" "a" ]
        in
        let rel = E.Matching_table.to_relation mt in
        Alcotest.(check (list string)) "" [ "r_rk"; "s_sk" ]
          (R.Schema.names (R.Relation.schema rel));
        match R.Relation.tuples rel with
        | [ first; _ ] ->
            Alcotest.(check string) "sorted" "1"
              (V.to_string (R.Tuple.nth first 0))
        | _ -> Alcotest.fail "two rows expected");
  ]

(* ---- Identify on the paper's tables ---- *)

let identify_tests =
  [
    qtest ~count:10 "run and run_rules are jobs-invariant"
      (restaurant_gen ~n_entities:12 ())
      (fun inst ->
        let same o (o' : E.Identify.outcome) =
          o.E.Identify.pairs = o'.pairs
          && R.Relation.tuples o.r_extended = R.Relation.tuples o'.r_extended
          && R.Relation.tuples o.s_extended = R.Relation.tuples o'.s_extended
          && E.Matching_table.entries o.matching_table
             = E.Matching_table.entries o'.matching_table
          && o.unmatched_r = o'.unmatched_r
          && o.unmatched_s = o'.unmatched_s
        in
        let run jobs =
          E.Identify.run ~jobs ~r:inst.r ~s:inst.s ~key:inst.key inst.ilfds
        in
        let identity = [ E.Extended_key.equivalence_rule inst.key ] in
        let run_rules jobs =
          E.Identify.run_rules ~jobs ~identity ~r:inst.r ~s:inst.s
            ~key:inst.key inst.ilfds
        in
        same (run 1) (run 3)
        && same (run 1) (run 8)
        && same (run_rules 1) (run_rules 3));
    case "Example 2 / Table 3: the TwinCities pair" (fun () ->
        let o =
          E.Identify.run ~r:PD.table2_r ~s:PD.table2_s ~key:PD.example2_key
            [ PD.example2_ilfd ]
        in
        Alcotest.(check int) "" 1
          (E.Matching_table.cardinality o.matching_table);
        match E.Matching_table.entries o.matching_table with
        | [ e ] ->
            Alcotest.(check string) "r name" "TwinCities"
              (V.to_string (R.Tuple.nth e.r_key 0));
            Alcotest.(check string) "r cuisine" "Indian"
              (V.to_string (R.Tuple.nth e.r_key 1))
        | _ -> Alcotest.fail "one entry");
    case "Example 3 / Table 7: three pairs" (fun () ->
        let o =
          E.Identify.run ~r:PD.table5_r ~s:PD.table5_s ~key:PD.example3_key
            PD.ilfds_i1_i8
        in
        Alcotest.(check int) "" 3
          (E.Matching_table.cardinality o.matching_table);
        Alcotest.(check bool) "verified" true (E.Identify.is_verified o);
        (* Two R tuples keep a NULL speciality (no ILFD derives it for
           TwinCities/Indian or VillageWok/Chinese), so they are excluded
           from K_Ext matching; every S cuisine derives, so S has no
           NULL-key tuples. The other three R tuples all match:
           |MT| = |R| − |unmatched_r|. *)
        Alcotest.(check int) "NULL-key R tuples" 2
          (List.length o.unmatched_r);
        Alcotest.(check int) "NULL-key S tuples" 0
          (List.length o.unmatched_s));
    case "Table 6: extended relations carry derived values" (fun () ->
        let o =
          E.Identify.run ~r:PD.table5_r ~s:PD.table5_s ~key:PD.example3_key
            PD.ilfds_i1_i8
        in
        let rs = R.Relation.schema o.r_extended in
        let row name cuisine =
          Option.get
            (R.Relation.find_opt
               (fun t ->
                 get rs t "name" = name && get rs t "cuisine" = cuisine)
               o.r_extended)
        in
        Alcotest.(check string) "TwinCities Chinese -> Hunan" "Hunan"
          (get rs (row "TwinCities" "Chinese") "speciality");
        Alcotest.(check string) "It'sGreek -> Gyros via chain" "Gyros"
          (get rs (row "It'sGreek" "Greek") "speciality");
        Alcotest.(check string) "TwinCities Indian stays null" "null"
          (get rs (row "TwinCities" "Indian") "speciality");
        let ss = R.Relation.schema o.s_extended in
        Alcotest.(check bool) "every S cuisine derived" true
          (R.Relation.for_all
             (fun t -> not (V.is_null (R.Tuple.get ss t "cuisine")))
             o.s_extended));
    case "no ILFDs: nothing matches (missing key attrs stay null)" (fun () ->
        let o =
          E.Identify.run ~r:PD.table5_r ~s:PD.table5_s ~key:PD.example3_key []
        in
        Alcotest.(check int) "" 0
          (E.Matching_table.cardinality o.matching_table);
        (* With nothing derivable, every tuple misses an extended-key
           attribute, and the outcome accounts for all of them. *)
        Alcotest.(check int) "all R tuples NULL-key"
          (R.Relation.cardinality PD.table5_r)
          (List.length o.unmatched_r);
        Alcotest.(check int) "all S tuples NULL-key"
          (R.Relation.cardinality PD.table5_s)
          (List.length o.unmatched_s));
    case "name-only extended key is unsound on Table 5" (fun () ->
        let o =
          E.Identify.run ~r:PD.table5_r ~s:PD.table5_s
            ~key:(E.Extended_key.make [ "name" ])
            PD.ilfds_i1_i8
        in
        Alcotest.(check bool) "" false (E.Identify.is_verified o);
        Alcotest.(check bool) "" (true)
          (List.length o.violations > 0));
    case "empty relations yield empty table" (fun () ->
        let empty_r =
          R.Relation.empty (R.Schema.of_names [ "name"; "cuisine" ]) ()
        in
        let empty_s =
          R.Relation.empty (R.Schema.of_names [ "name"; "speciality" ]) ()
        in
        let o =
          E.Identify.run ~r:empty_r ~s:empty_s ~key:PD.example3_key
            PD.ilfds_i1_i8
        in
        Alcotest.(check int) "" 0
          (E.Matching_table.cardinality o.matching_table));
    case "extension_schema appends missing key attrs in order" (fun () ->
        let s = E.Identify.extension_schema PD.table5_r PD.example3_key in
        Alcotest.(check (list string)) ""
          [ "name"; "cuisine"; "street"; "speciality" ]
          (R.Schema.names s));
    case "run_rules with extended-key rule equals run" (fun () ->
        let rule = E.Extended_key.equivalence_rule PD.example3_key in
        let via_rules =
          E.Identify.run_rules ~identity:[ rule ] ~r:PD.table5_r
            ~s:PD.table5_s ~key:PD.example3_key PD.ilfds_i1_i8
        in
        let direct =
          E.Identify.run ~r:PD.table5_r ~s:PD.table5_s ~key:PD.example3_key
            PD.ilfds_i1_i8
        in
        Alcotest.(check bool) "" true
          (mt_entries_equal via_rules.matching_table direct.matching_table));
    case "run_rules accepts extra identity rules (paper's r1 shape)" (fun () ->
        (* A one-Chinese-restaurant-per-database world: cuisine equality
           alone identifies. *)
        let r =
          relation [ "name"; "cuisine" ] [ [ "name" ] ]
            [ [ "WokA"; "Chinese" ] ]
        in
        let s =
          relation [ "name"; "cuisine" ] [ [ "name" ] ]
            [ [ "WokB"; "Chinese" ] ]
        in
        let r1 =
          Rules.Identity.make ~name:"r1"
            [
              Rules.Atom.make
                (Rules.Atom.attr Rules.Atom.Left "cuisine")
                R.Predicate.Eq
                (Rules.Atom.const (v "Chinese"));
              Rules.Atom.make
                (Rules.Atom.attr Rules.Atom.Right "cuisine")
                R.Predicate.Eq
                (Rules.Atom.const (v "Chinese"));
            ]
        in
        let o =
          E.Identify.run_rules ~identity:[ r1 ] ~r ~s
            ~key:(E.Extended_key.make [ "cuisine" ]) []
        in
        Alcotest.(check int) "" 1
          (E.Matching_table.cardinality o.matching_table));
    case "pairs agree with matching table" (fun () ->
        let o =
          E.Identify.run ~r:PD.table5_r ~s:PD.table5_s ~key:PD.example3_key
            PD.ilfds_i1_i8
        in
        Alcotest.(check int) "" (List.length o.pairs)
          (E.Matching_table.cardinality o.matching_table));
  ]

(* ---- Negative ---- *)

let negative_tests =
  [
    case "Table 4: Example 2's provably-distinct pair" (fun () ->
        (* (TwinCities, Chinese) in R vs (TwinCities, Mughalai) in S:
           Mughalai implies Indian, and Chinese ≠ Indian. *)
        let nmt =
          E.Negative.of_ilfds ~r:PD.table2_r ~s:PD.table2_s
            [ PD.example2_ilfd ]
        in
        Alcotest.(check int) "" 1 (E.Matching_table.cardinality nmt);
        match E.Matching_table.entries nmt with
        | [ e ] ->
            Alcotest.(check string) "" "Chinese"
              (V.to_string (R.Tuple.nth e.r_key 1))
        | _ -> Alcotest.fail "one entry");
    case "MT and NMT are consistent on Example 3" (fun () ->
        let o =
          E.Identify.run ~r:PD.table5_r ~s:PD.table5_s ~key:PD.example3_key
            PD.ilfds_i1_i8
        in
        let nmt =
          E.Negative.of_ilfds ~r:o.r_extended ~s:o.s_extended PD.ilfds_i1_i8
        in
        Alcotest.(check bool) "" true
          (E.Matching_table.consistent o.matching_table nmt));
    case "prop-1 rules from ilfds skip empty antecedents" (fun () ->
        let rules =
          E.Negative.distinctness_rules_of_ilfds
            [ Ilfd.make [] [ Ilfd.condition "a" (v "x") ] ]
        in
        Alcotest.(check int) "" 0 (List.length rules));
  ]

(* ---- Integrate ---- *)

let integrate_tests =
  [
    case "row count = matches + unmatched both sides" (fun () ->
        let o =
          E.Identify.run ~r:PD.table5_r ~s:PD.table5_s ~key:PD.example3_key
            PD.ilfds_i1_i8
        in
        let t = E.Integrate.integrated_table ~key:PD.example3_key o in
        (* 3 merged + 2 R-only + 1 S-only = 6 rows, as in the session. *)
        Alcotest.(check int) "" 6 (R.Relation.cardinality t);
        Alcotest.(check int) "unmatched R" 2
          (List.length (E.Integrate.unmatched_r o));
        Alcotest.(check int) "unmatched S" 1
          (List.length (E.Integrate.unmatched_s o)));
    case "column layout: kext blocks first" (fun () ->
        let o =
          E.Identify.run ~r:PD.table5_r ~s:PD.table5_s ~key:PD.example3_key
            PD.ilfds_i1_i8
        in
        let t = E.Integrate.integrated_table ~key:PD.example3_key o in
        Alcotest.(check (list string)) ""
          [ "r_name"; "r_cuisine"; "r_speciality"; "s_name"; "s_cuisine";
            "s_speciality"; "r_street"; "s_county" ]
          (R.Schema.names (R.Relation.schema t)));
    case "merged rows agree on extended key" (fun () ->
        let o =
          E.Identify.run ~r:PD.table5_r ~s:PD.table5_s ~key:PD.example3_key
            PD.ilfds_i1_i8
        in
        let t = E.Integrate.integrated_table ~key:PD.example3_key o in
        let schema = R.Relation.schema t in
        R.Relation.iter
          (fun row ->
            let merged =
              (not (V.is_null (R.Tuple.get schema row "r_name")))
              && not (V.is_null (R.Tuple.get schema row "s_name"))
            in
            if merged then
              List.iter
                (fun a ->
                  Alcotest.(check string)
                    a
                    (get schema row ("r_" ^ a))
                    (get schema row ("s_" ^ a)))
                (E.Extended_key.attributes PD.example3_key))
          t);
    case "possibly_same respects non-null conflicts" (fun () ->
        let o =
          E.Identify.run ~r:PD.table5_r ~s:PD.table5_s ~key:PD.example3_key
            PD.ilfds_i1_i8
        in
        let t = E.Integrate.integrated_table ~key:PD.example3_key o in
        let schema = R.Relation.schema t in
        let rows = R.Relation.tuples t in
        let sichuan =
          List.find (fun r -> get schema r "s_speciality" = "Sichuan") rows
        in
        let twincities_indian =
          List.find
            (fun r ->
              get schema r "r_name" = "TwinCities"
              && get schema r "r_cuisine" = "Indian")
            rows
        in
        let anjuman =
          List.find (fun r -> get schema r "r_name" = "Anjuman") rows
        in
        Alcotest.(check bool) "row compatible with itself" true
          (E.Integrate.possibly_same ~key:PD.example3_key schema sichuan
             sichuan);
        Alcotest.(check bool) "TwinCities-Indian vs Sichuan: cuisines clash"
          false
          (E.Integrate.possibly_same ~key:PD.example3_key schema
             twincities_indian sichuan);
        Alcotest.(check bool) "Anjuman/Sichuan conflict" false
          (E.Integrate.possibly_same ~key:PD.example3_key schema anjuman
             sichuan));
  ]

(* ---- Monotonic (Figure 3) ---- *)

let monotonic_tests =
  [
    case "adding ILFDs is monotone on Example 3" (fun () ->
        let state =
          E.Monotonic.create ~r:PD.table5_r ~s:PD.table5_s
            ~key:PD.example3_key ()
        in
        let rec feed state previous = function
          | [] -> ()
          | ilfd :: rest ->
              let state = E.Monotonic.add_ilfd state ilfd in
              let current = E.Monotonic.snapshot state in
              Alcotest.(check bool) "monotone" true
                (E.Monotonic.monotone_step previous current);
              feed state current rest
        in
        let initial =
          E.Monotonic.snapshot
            (E.Monotonic.create ~r:PD.table5_r ~s:PD.table5_s
               ~key:PD.example3_key ())
        in
        feed state initial PD.ilfds_i1_i8);
    case "snapshot partition sums to total" (fun () ->
        let state =
          E.Monotonic.add_ilfds
            (E.Monotonic.create ~r:PD.table5_r ~s:PD.table5_s
               ~key:PD.example3_key ())
            PD.ilfds_i1_i8
        in
        let snap = E.Monotonic.snapshot state in
        Alcotest.(check int) "" snap.total_pairs
          (E.Matching_table.cardinality snap.matched
          + E.Matching_table.cardinality snap.not_matched
          + snap.undetermined_count);
        Alcotest.(check int) "20 pairs" 20 snap.total_pairs;
        Alcotest.(check int) "3 matched" 3
          (E.Matching_table.cardinality snap.matched));
    qtest ~count:8 "any ILFD prefix chain is monotone (random instances)"
      (restaurant_gen ~n_entities:12 ~null_street_rate:0.0 ())
      (fun inst ->
        let state =
          E.Monotonic.create ~r:inst.r ~s:inst.s ~key:inst.key ()
        in
        let rec monotone state previous = function
          | [] -> true
          | ilfd :: rest ->
              let state = E.Monotonic.add_ilfd state ilfd in
              let snap = E.Monotonic.snapshot state in
              E.Monotonic.monotone_step previous snap
              && monotone state snap rest
        in
        (* A prefix of the rule set, in generation order. *)
        let prefix =
          List.filteri (fun i _ -> i mod 2 = 0) inst.ilfds
        in
        monotone state (E.Monotonic.snapshot state) prefix);
    case "user distinctness rules join the negative side" (fun () ->
        let rule =
          Rules.Distinctness.make ~name:"never"
            [
              Rules.Atom.make
                (Rules.Atom.attr Rules.Atom.Left "name")
                R.Predicate.Eq
                (Rules.Atom.const (v "VillageWok"));
              Rules.Atom.make
                (Rules.Atom.attr Rules.Atom.Right "name")
                R.Predicate.Ne
                (Rules.Atom.const (v "VillageWok"));
            ]
        in
        let state =
          E.Monotonic.add_distinctness
            (E.Monotonic.create ~r:PD.table5_r ~s:PD.table5_s
               ~key:PD.example3_key ())
            rule
        in
        let snap = E.Monotonic.snapshot state in
        (* VillageWok in R vs all 4 S tuples (none named VillageWok). *)
        Alcotest.(check int) "" 4
          (E.Matching_table.cardinality snap.not_matched));
  ]

(* ---- Algebraic (Section 4.2 / Figure 4) ---- *)

let algebraic_tests =
  [
    case "agrees with engine on Example 2" (fun () ->
        let o =
          E.Identify.run ~r:PD.table2_r ~s:PD.table2_s ~key:PD.example2_key
            [ PD.example2_ilfd ]
        in
        let plan =
          E.Algebraic.run ~r:PD.table2_r ~s:PD.table2_s ~key:PD.example2_key
            [ PD.example2_ilfd ]
        in
        Alcotest.(check bool) "" true (E.Algebraic.agrees plan o));
    case "agrees with engine on Example 3 (needs saturation)" (fun () ->
        let o =
          E.Identify.run ~r:PD.table5_r ~s:PD.table5_s ~key:PD.example3_key
            PD.ilfds_i1_i8
        in
        let plan =
          E.Algebraic.run ~r:PD.table5_r ~s:PD.table5_s ~key:PD.example3_key
            PD.ilfds_i1_i8
        in
        Alcotest.(check bool) "" true (E.Algebraic.agrees plan o));
    case "r_prime matches Table 6 contents" (fun () ->
        let plan =
          E.Algebraic.run ~r:PD.table5_r ~s:PD.table5_s ~key:PD.example3_key
            PD.ilfds_i1_i8
        in
        let schema = R.Relation.schema plan.r_prime in
        let gyros =
          R.Relation.find_opt
            (fun t -> get schema t "name" = "It'sGreek")
            plan.r_prime
        in
        match gyros with
        | Some t ->
            Alcotest.(check string) "" "Gyros" (get schema t "speciality")
        | None -> Alcotest.fail "It'sGreek row missing");
    case "agrees on chain workloads (depth 3)" (fun () ->
        let inst =
          Workload.Chain.generate
            { Workload.Chain.default with n_entities = 12; depth = 3 }
        in
        let o =
          E.Identify.run ~r:inst.r ~s:inst.s ~key:inst.key inst.ilfds
        in
        let plan =
          E.Algebraic.run ~r:inst.r ~s:inst.s ~key:inst.key inst.ilfds
        in
        Alcotest.(check bool) "" true (E.Algebraic.agrees plan o));
    qtest ~count:10 "agrees on random restaurant instances"
      (restaurant_gen ~n_entities:25 ~null_street_rate:0.0 ())
      (fun inst ->
        let o =
          E.Identify.run ~r:inst.r ~s:inst.s ~key:inst.key inst.ilfds
        in
        let plan =
          E.Algebraic.run ~r:inst.r ~s:inst.s ~key:inst.key inst.ilfds
        in
        E.Algebraic.agrees plan o);
  ]

(* ---- Verify & Figure 2 ---- *)

let verify_tests =
  [
    case "check flags unsound tables" (fun () ->
        let mt =
          E.Matching_table.make ~r_key_attrs:[ "rk" ] ~s_key_attrs:[ "sk" ]
            [ entry "1" "a"; entry "1" "b" ]
        in
        let report = E.Verify.check mt in
        Alcotest.(check bool) "" false
          (E.Verify.is_sound_wrt_constraints report));
    case "against_truth counts" (fun () ->
        let mt =
          E.Matching_table.make ~r_key_attrs:[ "rk" ] ~s_key_attrs:[ "sk" ]
            [ entry "1" "a"; entry "2" "wrong" ]
        in
        let truth = [ entry "1" "a"; entry "3" "missed" ] in
        let c = E.Verify.against_truth ~truth mt in
        Alcotest.(check int) "tm" 1 c.true_matches;
        Alcotest.(check int) "fm" 1 c.false_matches;
        Alcotest.(check int) "miss" 1 c.missed_matches;
        Alcotest.(check bool) "" false (E.Verify.sound_wrt_truth c));
    case "Figure 2: identical attributes, different entities" (fun () ->
        (* Without a domain attribute, attribute-value equivalence
           declares r1 ≡ s1 — unsound w.r.t. the integrated world where
           they are different restaurants (different streets). *)
        let naive =
          Baselines.Key_equiv.run_on_attributes ~attrs:[ "name"; "cuisine" ]
            PD.figure2_r PD.figure2_s
        in
        Alcotest.(check int) "naive matches the pair" 1
          (E.Matching_table.cardinality naive);
        let truth = [] in
        let c = E.Verify.against_truth ~truth naive in
        Alcotest.(check bool) "soundness violated" false
          (E.Verify.sound_wrt_truth c);
        (* With the domain attribute the pair becomes distinguishable:
           a distinctness rule on the domains blocks the match. *)
        let r_tagged =
          E.Verify.add_domain_attribute "domain" (v "DB1") PD.figure2_r
        in
        let s_tagged =
          E.Verify.add_domain_attribute "domain" (v "DB2") PD.figure2_s
        in
        let domain_rule =
          Rules.Distinctness.make ~name:"different subsets"
            [
              Rules.Atom.make
                (Rules.Atom.attr Rules.Atom.Left "domain")
                R.Predicate.Eq
                (Rules.Atom.const (v "DB1"));
              Rules.Atom.make
                (Rules.Atom.attr Rules.Atom.Right "domain")
                R.Predicate.Eq
                (Rules.Atom.const (v "DB2"));
              Rules.Atom.make
                (Rules.Atom.attr Rules.Atom.Left "name")
                R.Predicate.Eq
                (Rules.Atom.attr Rules.Atom.Right "name");
            ]
        in
        let nmt = E.Negative.of_rules ~r:r_tagged ~s:s_tagged [ domain_rule ] in
        Alcotest.(check int) "pair now provably distinct" 1
          (E.Matching_table.cardinality nmt));
    case "add_domain_attribute widens schema" (fun () ->
        let tagged =
          E.Verify.add_domain_attribute "domain" (v "DB1") PD.figure2_r
        in
        Alcotest.(check bool) "" true
          (R.Schema.mem (R.Relation.schema tagged) "domain"));
  ]

let () =
  Alcotest.run "entity_id"
    [
      ("match-result", match_result_tests);
      ("extended-key", extended_key_tests);
      ("decision", decision_tests);
      ("matching-table", matching_table_tests);
      ("identify", identify_tests);
      ("negative", negative_tests);
      ("integrate", integrate_tests);
      ("monotonic", monotonic_tests);
      ("algebraic", algebraic_tests);
      ("verify", verify_tests);
    ]
