(* The harness checking the harness: scenario determinism, the clean
   sweep, mutation sanity (every seeded fault is caught and shrunk), and
   the corpus loader. *)

module C = Checker

let case name f = Alcotest.test_case name `Quick f

let dump sc = Format.asprintf "%a" C.Scenario.pp sc

let scenario_tests =
  [
    case "equal seeds yield identical scenarios" (fun () ->
        List.iter
          (fun seed ->
            let a = C.Scenario.generate ~seed
            and b = C.Scenario.generate ~seed in
            Alcotest.(check string)
              (Printf.sprintf "seed %d replays" seed)
              (dump a) (dump b);
            Alcotest.(check bool) "same strictness" a.strict b.strict)
          [ 1; 7; 42; 1000 ]);
    case "distinct seeds yield distinct scenarios" (fun () ->
        (* Not a hard guarantee seed-by-seed, but over a few seeds the
           dumps must not all collapse to one instance. *)
        let dumps =
          List.map (fun seed -> dump (C.Scenario.generate ~seed)) [ 1; 2; 3 ]
        in
        Alcotest.(check bool) "" true
          (List.length (List.sort_uniq compare dumps) > 1));
    case "dump embeds the replay command" (fun () ->
        let sc = C.Scenario.generate ~seed:17 in
        let out = dump sc in
        let contains needle hay =
          let nl = String.length needle and hl = String.length hay in
          let rec scan i =
            i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1))
          in
          scan 0
        in
        Alcotest.(check bool) "replay line" true
          (contains "check --seed 17 --scenarios 1" out));
    case "with_instance preserves identity, size tracks it" (fun () ->
        let sc = C.Scenario.generate ~seed:5 in
        let smaller =
          C.Scenario.with_instance sc ~r:sc.r ~s:sc.s ~ilfds:[]
        in
        Alcotest.(check int) "seed kept" sc.seed smaller.seed;
        Alcotest.(check bool) "strict kept" sc.strict smaller.strict;
        Alcotest.(check int) "size is |R|+|S|"
          (Relational.Relation.cardinality sc.r
          + Relational.Relation.cardinality sc.s)
          (C.Scenario.size sc));
  ]

let fault_tests =
  [
    case "fault names round-trip" (fun () ->
        List.iter
          (fun fault ->
            let name = C.Oracle.fault_to_string fault in
            Alcotest.(check bool) name true
              (C.Oracle.fault_of_string name = Some fault))
          C.Oracle.all_faults;
        Alcotest.(check bool) "unknown rejected" true
          (C.Oracle.fault_of_string "no-such-fault" = None));
  ]

let seeds ~from n = C.Harness.seed_range ~seed:from ~scenarios:n ()

let oracle_tests =
  [
    case "unmodified engines pass a fixed-seed sweep" (fun () ->
        let outcome = C.Harness.run ~seeds:(seeds ~from:1 25) () in
        Alcotest.(check int) "all scenarios ran" 25 outcome.scenarios_run;
        Alcotest.(check bool) "no counterexamples" true
          (C.Harness.ok outcome));
    case "broken blocking key is caught and shrunk small" (fun () ->
        (* The mutation-sanity acceptance bar: the deliberately broken
           join must be reported within a small fixed-seed budget and
           shrink to at most 4 tuples. *)
        let outcome =
          C.Harness.run ~fault:C.Oracle.Broken_blocking_key
            ~max_failures:1 ~seeds:(seeds ~from:1 10) ()
        in
        match outcome.failures with
        | [ f ] -> (
            match f.shrunk with
            | Some (small, d, stats) ->
                Alcotest.(check bool) "shrunk to <= 4 tuples" true
                  (C.Scenario.size small <= 4);
                Alcotest.(check string) "same failing check"
                  f.discrepancy.check d.check;
                Alcotest.(check bool) "some removals kept" true
                  (stats.kept > 0 && stats.attempts >= stats.kept)
            | None -> Alcotest.fail "shrinking was on")
        | _ -> Alcotest.fail "the fault must be detected");
    case "dropped matching-table entry is caught" (fun () ->
        let outcome =
          C.Harness.run ~fault:C.Oracle.Drop_last_pair ~shrink:false
            ~max_failures:1 ~seeds:(seeds ~from:1 10) ()
        in
        Alcotest.(check bool) "detected" false (C.Harness.ok outcome));
    case "lost incremental insert is caught" (fun () ->
        let outcome =
          C.Harness.run ~fault:C.Oracle.Lost_insert ~shrink:false
            ~max_failures:1 ~seeds:(seeds ~from:1 10) ()
        in
        match outcome.failures with
        | f :: _ ->
            Alcotest.(check string) "replay check names the engine"
              "incremental-replay" f.discrepancy.check
        | [] -> Alcotest.fail "the fault must be detected");
    case "max_failures stops the sweep early" (fun () ->
        let outcome =
          C.Harness.run ~fault:C.Oracle.Broken_blocking_key ~shrink:false
            ~max_failures:1 ~seeds:(seeds ~from:1 10) ()
        in
        Alcotest.(check int) "one failure" 1 (List.length outcome.failures);
        Alcotest.(check bool) "stopped before the full range" true
          (outcome.scenarios_run < 10));
    case "progress callback sees every scenario" (fun () ->
        let calls = ref 0 in
        let _ =
          C.Harness.run
            ~progress:(fun ~scenario:_ ~total ~failures:_ ->
              incr calls;
              Alcotest.(check int) "total" 5 total)
            ~seeds:(seeds ~from:1 5) ()
        in
        Alcotest.(check int) "5 callbacks" 5 !calls);
  ]

(* Render (family, seed) entries for list-equality checks. *)
let entry (k, s) = Printf.sprintf "%s:%d" (C.Scenario.kind_to_string k) s

let corpus_tests =
  [
    case "corpus loads ints, comments, blanks" (fun () ->
        let path = Filename.concat (Sys.getcwd ()) "corpus_ok.txt" in
        let oc = open_out path in
        output_string oc "# regression seeds\n1\n\n42   \n# trailing\n7\n";
        close_out oc;
        (match C.Harness.load_corpus path with
        | Ok seeds ->
            Alcotest.(check (list string))
              ""
              [ "restaurant:1"; "restaurant:42"; "restaurant:7" ]
              (List.map entry seeds)
        | Error e -> Alcotest.fail e);
        Sys.remove path);
    case "corpus loads mixed-family lines, old lines keep parsing" (fun () ->
        let path = Filename.concat (Sys.getcwd ()) "corpus_mixed.txt" in
        let oc = open_out path in
        output_string oc
          "# mixed families\n1\n5 kdb\n9 md\n2 merge-policy\n3 restaurant\n";
        close_out oc;
        (match C.Harness.load_corpus path with
        | Ok seeds ->
            Alcotest.(check (list string))
              ""
              [ "restaurant:1"; "kdb:5"; "md:9"; "merge-policy:2";
                "restaurant:3" ]
              (List.map entry seeds)
        | Error e -> Alcotest.fail e);
        Sys.remove path);
    case "corpus rejects unknown family names" (fun () ->
        let path = Filename.concat (Sys.getcwd ()) "corpus_badfam.txt" in
        let oc = open_out path in
        output_string oc "1\n2 no-such-family\n";
        close_out oc;
        (match C.Harness.load_corpus path with
        | Ok _ -> Alcotest.fail "must reject"
        | Error e ->
            let contains needle hay =
              let nl = String.length needle and hl = String.length hay in
              let rec scan i =
                i + nl <= hl
                && (String.sub hay i nl = needle || scan (i + 1))
              in
              scan 0
            in
            Alcotest.(check bool) "names line 2" true (contains ":2:" e);
            Alcotest.(check bool) "names the family" true
              (contains "no-such-family" e);
            Alcotest.(check bool) "lists valid names" true
              (contains "merge-policy" e));
        Sys.remove path);
    case "malformed corpus reports the line" (fun () ->
        let path = Filename.concat (Sys.getcwd ()) "corpus_bad.txt" in
        let oc = open_out path in
        output_string oc "1\nnot-a-seed\n";
        close_out oc;
        (match C.Harness.load_corpus path with
        | Ok _ -> Alcotest.fail "must reject"
        | Error e ->
            let contains needle hay =
              let nl = String.length needle and hl = String.length hay in
              let rec scan i =
                i + nl <= hl
                && (String.sub hay i nl = needle || scan (i + 1))
              in
              scan 0
            in
            Alcotest.(check bool) "names line 2" true (contains ":2:" e));
        Sys.remove path);
    case "missing corpus is an error, not an exception" (fun () ->
        match C.Harness.load_corpus "does/not/exist.txt" with
        | Ok _ -> Alcotest.fail "must fail"
        | Error _ -> ());
    case "corpus seeds replay clean on unmodified engines" (fun () ->
        let path = Filename.concat (Sys.getcwd ()) "corpus_replay.txt" in
        let oc = open_out path in
        output_string oc "1\n3\n1 kdb\n1 md\n1 merge-policy\n";
        close_out oc;
        (match C.Harness.load_corpus path with
        | Ok seeds ->
            Alcotest.(check bool) "" true
              (C.Harness.ok (C.Harness.run ~seeds ()))
        | Error e -> Alcotest.fail e);
        Sys.remove path);
  ]

let () =
  Alcotest.run "checker"
    [
      ("scenario", scenario_tests);
      ("fault", fault_tests);
      ("oracle", oracle_tests);
      ("corpus", corpus_tests);
    ]
