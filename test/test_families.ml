(* The workload families and their reference oracles: seeded generation
   determinism, clean sweeps per family, handcrafted fixtures exercising
   each family oracle's contract directly, and the per-family mutation
   sanity bar (every injected fault caught and shrunk small, with the
   family preserved through shrinking). *)

module C = Checker
module R = Relational
module V = R.Value
module E = Entity_id

let case name f = Alcotest.test_case name `Quick f

let dump sc = Format.asprintf "%a" C.Scenario.pp sc

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec scan i =
    i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1))
  in
  scan 0

let new_kinds = [ C.Scenario.Kdb; C.Scenario.Md; C.Scenario.Merge_policy ]

let seeds ?family ~from n =
  C.Harness.seed_range ?family ~seed:from ~scenarios:n ()

let kind_tests =
  [
    case "kind names round-trip" (fun () ->
        List.iter
          (fun k ->
            let name = C.Scenario.kind_to_string k in
            Alcotest.(check bool) name true
              (C.Scenario.kind_of_string name = Some k))
          C.Scenario.all_kinds;
        Alcotest.(check bool) "unknown rejected" true
          (C.Scenario.kind_of_string "no-such-family" = None));
    case "telemetry slugs avoid dashes" (fun () ->
        List.iter
          (fun k ->
            Alcotest.(check bool)
              (C.Scenario.kind_slug k)
              false
              (String.contains (C.Scenario.kind_slug k) '-'))
          C.Scenario.all_kinds);
    case "restaurant generation is unchanged by the dispatch" (fun () ->
        Alcotest.(check string)
          "same scenario"
          (dump (C.Scenario.generate ~seed:9))
          (dump (C.Families.generate C.Scenario.Restaurant ~seed:9)));
    case "equal seeds replay within every family" (fun () ->
        List.iter
          (fun kind ->
            let a = C.Families.generate kind ~seed:11
            and b = C.Families.generate kind ~seed:11 in
            Alcotest.(check string)
              (C.Scenario.kind_to_string kind)
              (dump a) (dump b))
          new_kinds);
    case "generated scenarios carry their kind" (fun () ->
        List.iter
          (fun kind ->
            let sc = C.Families.generate kind ~seed:3 in
            Alcotest.(check string)
              "kind_of"
              (C.Scenario.kind_to_string kind)
              (C.Scenario.kind_to_string (C.Scenario.kind_of sc)))
          C.Scenario.all_kinds);
    case "kdb scenarios hold more than two databases" (fun () ->
        List.iter
          (fun seed ->
            let sc = C.Families.generate C.Scenario.Kdb ~seed in
            Alcotest.(check bool) "k > 2" true
              (List.length (C.Scenario.kdb_others sc) >= 1))
          [ 1; 2; 3; 4; 5 ]);
    case "dump embeds the family replay flag" (fun () ->
        let sc = C.Families.generate C.Scenario.Kdb ~seed:17 in
        Alcotest.(check bool) "kdb flag" true
          (contains "check --family kdb --seed 17 --scenarios 1" (dump sc));
        let sc = C.Families.generate C.Scenario.Merge_policy ~seed:4 in
        Alcotest.(check bool) "merge-policy flag" true
          (contains "--family merge-policy" (dump sc)));
  ]

let sweep_tests =
  List.map
    (fun kind ->
      let name = C.Scenario.kind_to_string kind in
      case
        (Printf.sprintf "%s family passes a fixed-seed sweep" name)
        (fun () ->
          let telemetry = Telemetry.create () in
          let outcome =
            C.Harness.run ~telemetry ~seeds:(seeds ~family:kind ~from:1 8) ()
          in
          Alcotest.(check bool) "no counterexamples" true
            (C.Harness.ok outcome);
          Alcotest.(check int)
            "family scenario counter charged"
            8
            (Telemetry.counter telemetry
               (Printf.sprintf "checker.family.%s.scenarios"
                  (C.Scenario.kind_slug kind)))))
    new_kinds

(* ---- handcrafted fixtures against the family oracles directly ---- *)

let rel names keys rows =
  R.Relation.create (R.Schema.of_names names) ~keys rows

let kattrs = [ "name"; "cuisine"; "speciality" ]

let v = V.string

(* A scenario shell around handcrafted relations: the generated seed-1
   scenario donates its config record, everything observable is
   replaced. *)
let shell kind ~r ~s ~ilfds ~family =
  let sc = C.Families.generate kind ~seed:1 in
  {
    sc with
    C.Scenario.r;
    s;
    key = E.Extended_key.make kattrs;
    ilfds;
    truth = [];
    strict = false;
    family;
  }

let outcome (sc : C.Scenario.t) =
  E.Identify.run ~r:sc.C.Scenario.r ~s:sc.C.Scenario.s ~key:sc.C.Scenario.key
    sc.C.Scenario.ilfds

let md_fixture () =
  (* R holds (A, Chinese, NULL) underivable; S holds (A, NULL, Hunan),
     whose cuisine the ILFD derives. One-shot matching finds nothing
     (speciality disagrees through NULL); the dependency name ~>
     speciality fills R's NULL from S and enables the match. *)
  let r =
    rel kattrs [ [ "name" ] ] [ [ v "A"; v "Chinese"; V.null ] ]
  and s =
    rel kattrs [ [ "name" ] ]
      [ [ v "A"; V.null; v "Hunan" ]; [ v "B"; v "Greek"; v "Gyros" ] ]
  and ilfds = [ Ilfd.parse "speciality = Hunan -> cuisine = Chinese" ] in
  let family =
    C.Scenario.F_md
      { deps = [ { C.Scenario.lhs = [ "name" ]; rhs = [ "speciality" ] } ] }
  in
  shell C.Scenario.Md ~r ~s ~ilfds ~family

let md_tests =
  [
    case "NULL repair induces a classified fixpoint match" (fun () ->
        let sc = md_fixture () in
        let telemetry = Telemetry.create () in
        (match C.Families.check ~telemetry sc (outcome sc) with
        | Ok () -> ()
        | Error (check, detail) ->
            Alcotest.fail (Printf.sprintf "%s: %s" check detail));
        Alcotest.(check int) "no one-shot match" 0
          (Telemetry.counter telemetry "checker.family.md.one_shot");
        Alcotest.(check int) "one induced match, classified" 1
          (Telemetry.counter telemetry "checker.family.md.induced"));
    case "phantom one-shot match fails the containment" (fun () ->
        let sc = md_fixture () in
        match
          C.Families.check ~fault:C.Families.Phantom_match sc (outcome sc)
        with
        | Error ("md-fixpoint", _) -> ()
        | Error (check, _) ->
            Alcotest.fail (Printf.sprintf "wrong check %s" check)
        | Ok () -> Alcotest.fail "phantom must be caught");
    case "dependencies outside the extended key are rejected" (fun () ->
        let sc = md_fixture () in
        let sc =
          {
            sc with
            C.Scenario.family =
              C.Scenario.F_md
                { deps = [ { C.Scenario.lhs = [ "manager" ]; rhs = [] } ] };
          }
        in
        match C.Families.check sc (outcome sc) with
        | Error ("md-fixpoint", detail) ->
            Alcotest.(check bool) "names the attribute" true
              (contains "manager" detail)
        | Error (check, _) ->
            Alcotest.fail (Printf.sprintf "wrong check %s" check)
        | Ok () -> Alcotest.fail "must reject");
  ]

let merge_fixture ~null_free =
  let r_rows, s_rows =
    if null_free then
      ( [ [ v "A"; v "Chinese"; v "Hunan" ] ],
        [ [ v "A"; v "Chinese"; v "Hunan" ];
          [ v "B"; v "Szechuan"; v "Dumplings" ] ] )
    else
      ( [ [ v "A"; v "Chinese"; V.null ] ],
        [ [ v "A"; V.null; v "Hunan" ] ] )
  in
  let r = rel kattrs [ [ "name" ] ] r_rows
  and s = rel kattrs [ [ "name" ] ] s_rows in
  shell C.Scenario.Merge_policy ~r ~s ~ilfds:[]
    ~family:(C.Scenario.F_merge { anchor = "name" })

let merge_tests =
  [
    case "anchored NULL-compatible vectors merge beyond the MT" (fun () ->
        (* (A, Chinese, NULL) and (A, NULL, Hunan): no one-shot match,
           but the global policy fuses them — containment holds and the
           merge is counted. *)
        let sc = merge_fixture ~null_free:false in
        let telemetry = Telemetry.create () in
        (match C.Families.check ~telemetry sc (outcome sc) with
        | Ok () -> ()
        | Error (check, detail) ->
            Alcotest.fail (Printf.sprintf "%s: %s" check detail));
        Alcotest.(check int) "one merge" 1
          (Telemetry.counter telemetry "checker.family.merge_policy.merges");
        Alcotest.(check int) "one induced co-grouping" 1
          (Telemetry.counter telemetry
             "checker.family.merge_policy.induced"));
    case "NULL-free instances coincide exactly" (fun () ->
        let sc = merge_fixture ~null_free:true in
        let telemetry = Telemetry.create () in
        (match C.Families.check ~telemetry sc (outcome sc) with
        | Ok () -> ()
        | Error (check, detail) ->
            Alcotest.fail (Printf.sprintf "%s: %s" check detail));
        Alcotest.(check int) "no policy-only co-grouping" 0
          (Telemetry.counter telemetry
             "checker.family.merge_policy.induced"));
    case "rogue MT pair fails the containment" (fun () ->
        let sc = merge_fixture ~null_free:true in
        match
          C.Families.check ~fault:C.Families.Rogue_pair sc (outcome sc)
        with
        | Error ("merge-containment", _) -> ()
        | Error (check, _) ->
            Alcotest.fail (Printf.sprintf "wrong check %s" check)
        | Ok () -> Alcotest.fail "rogue pair must be caught");
    case "a non-key anchor is rejected" (fun () ->
        let sc = merge_fixture ~null_free:true in
        let sc =
          {
            sc with
            C.Scenario.family = C.Scenario.F_merge { anchor = "manager" };
          }
        in
        match C.Families.check sc (outcome sc) with
        | Error ("merge-containment", detail) ->
            Alcotest.(check bool) "names the anchor" true
              (contains "manager" detail)
        | Error (check, _) ->
            Alcotest.fail (Printf.sprintf "wrong check %s" check)
        | Ok () -> Alcotest.fail "must reject");
  ]

let kdb_fixture extra_rows =
  (* One entity present in all three databases: the pairwise verdicts
     form the 3-cycle r~s, r~t2, s~t2 whose closure the clustering must
     reproduce. *)
  let one = [ [ v "A"; v "Chinese"; v "Hunan" ] ] in
  let r = rel kattrs [ [ "name" ] ] one
  and s = rel kattrs [ [ "name" ] ] one
  and t2 = rel kattrs [ [ "name" ] ] (one @ extra_rows) in
  shell C.Scenario.Kdb ~r ~s ~ilfds:[]
    ~family:(C.Scenario.F_kdb { others = [ ("t2", t2) ] })

let kdb_tests =
  [
    case "a 3-cycle of matched pairs closes cleanly" (fun () ->
        let sc = kdb_fixture [] in
        let telemetry = Telemetry.create () in
        (match C.Families.check ~telemetry sc (outcome sc) with
        | Ok () -> ()
        | Error (check, detail) ->
            Alcotest.fail (Printf.sprintf "%s: %s" check detail));
        Alcotest.(check int) "three pairwise edges" 3
          (Telemetry.counter telemetry "checker.family.kdb.edges");
        Alcotest.(check int) "three co-memberships" 3
          (Telemetry.counter telemetry "checker.family.kdb.closure_pairs"));
    case "a dropped 3-cycle edge is a contradiction, not a miss" (fun () ->
        (* The lost s~t2 verdict is still implied by r~s and r~t2: the
           closure agrees with the clustering, so the failure must be
           the sharper kdb-contradiction. *)
        let sc = kdb_fixture [] in
        match C.Families.check ~fault:C.Families.Lost_edge sc (outcome sc)
        with
        | Error ("kdb-contradiction", _) -> ()
        | Error (check, _) ->
            Alcotest.fail (Printf.sprintf "wrong check %s" check)
        | Ok () -> Alcotest.fail "lost edge must be caught");
    case "NULL-keyed tuple in one database stays out of the closure"
      (fun () ->
        (* (B, NULL, Tofu) lives only in t2; its extended key never
           completes, so it must neither match pairwise nor be clustered
           — and the oracle must not read it as a contradiction. *)
        let sc = kdb_fixture [ [ v "B"; V.null; v "Tofu" ] ] in
        let telemetry = Telemetry.create () in
        (match C.Families.check ~telemetry sc (outcome sc) with
        | Ok () -> ()
        | Error (check, detail) ->
            Alcotest.fail (Printf.sprintf "%s: %s" check detail));
        Alcotest.(check int) "still three pairwise edges" 3
          (Telemetry.counter telemetry "checker.family.kdb.edges"));
  ]

(* ---- mutation sanity: the acceptance bar per family ---- *)

let mutation_tests =
  let bar kind fault expect_family =
    case
      (Printf.sprintf "%s fault is caught and shrunk small"
         (C.Oracle.fault_to_string fault))
      (fun () ->
        let outcome =
          C.Harness.run ~fault ~max_failures:1
            ~seeds:(seeds ~family:kind ~from:1 10)
            ()
        in
        match outcome.failures with
        | [ f ] -> (
            Alcotest.(check string) "family stamped" expect_family
              f.discrepancy.family;
            match f.shrunk with
            | Some (small, d, _) ->
                Alcotest.(check bool) "shrunk to <= 6 tuples" true
                  (C.Scenario.size small <= 6);
                Alcotest.(check string) "same failing check"
                  f.discrepancy.check d.check;
                Alcotest.(check string) "family preserved" expect_family
                  d.family;
                if kind = C.Scenario.Kdb then
                  Alcotest.(check bool) "witness stays k > 2" true
                    (C.Scenario.kdb_others small <> [])
            | None -> Alcotest.fail "shrinking was on")
        | _ -> Alcotest.fail "the fault must be detected")
  in
  [
    bar C.Scenario.Kdb C.Oracle.Kdb_lost_edge "kdb";
    bar C.Scenario.Md C.Oracle.Md_phantom_match "md";
    bar C.Scenario.Merge_policy C.Oracle.Merge_rogue_pair "merge-policy";
    case "family faults are inert outside their family" (fun () ->
        (* A kdb fault on restaurant scenarios must perturb nothing: the
           dispatch keys on the scenario's family, not the flag. *)
        let outcome =
          C.Harness.run ~fault:C.Oracle.Kdb_lost_edge ~shrink:false
            ~seeds:(seeds ~from:1 5) ()
        in
        Alcotest.(check bool) "clean" true (C.Harness.ok outcome));
    case "restaurant discrepancies carry the restaurant family" (fun () ->
        let outcome =
          C.Harness.run ~fault:C.Oracle.Broken_blocking_key ~shrink:false
            ~max_failures:1 ~seeds:(seeds ~from:1 10) ()
        in
        match outcome.failures with
        | f :: _ ->
            Alcotest.(check string) "family" "restaurant"
              f.discrepancy.family
        | [] -> Alcotest.fail "the fault must be detected");
  ]

let () =
  Alcotest.run "families"
    [
      ("kind", kind_tests);
      ("sweep", sweep_tests);
      ("md", md_tests);
      ("merge", merge_tests);
      ("kdb", kdb_tests);
      ("mutation", mutation_tests);
    ]
